"""The live daemon over real HTTP: parity, shedding, drain, health.

These tests exercise the acceptance criteria end to end against a
real ``ThreadingHTTPServer`` on a loopback port: daemon response bytes
are compared against direct engine calls (before a reload, after a
reload to the same epoch, and after a rolled-back failed reload), an
overloaded daemon sheds with 429 + Retry-After, and a draining daemon
finishes in-flight work while refusing new work with 503.
"""

import http.client
import json
import threading

import pytest

from repro.obs import (
    FlightRecorder,
    RotatingJsonlExporter,
    TimeSeriesSampler,
    observe,
)
from repro.obs.analyze import load_flight, load_timeseries
from repro.obs.prometheus import parse_prometheus_text
from repro.serve import (
    Reloader,
    ServeConfig,
    ServeDaemon,
    SnapshotHolder,
    protocol,
)
from repro.serve.protocol import parse_match_payload, serve_match

SOURCES = [
    ("easylist", "||ads.example^\n||track.example^$third-party"),
    ("exceptionrules", "@@||ads.example^$domain=friendly.example"),
]
MATCH = {"url": "http://ads.example/a.js", "content_type": "script",
         "page_host": "news.example", "request_host": "ads.example"}


def request(daemon, method, path, body=None, headers=None,
            timeout=30.0):
    host, port = daemon.address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            method, path,
            body=json.dumps(body).encode() if body is not None else None,
            headers=headers or {})
        response = connection.getresponse()
        return response.status, response.read(), dict(
            response.getheaders())
    finally:
        connection.close()


@pytest.fixture
def daemon():
    holder = SnapshotHolder.from_sources(SOURCES)
    instance = ServeDaemon(
        holder,
        ServeConfig(port=0, max_inflight=1, max_queue=0,
                    default_deadline_ms=5_000.0, drain_timeout_s=10.0,
                    allow_test_delay=True),
        reloader=Reloader(holder))
    instance.start()
    yield instance
    instance.stop()


def expected_bytes(daemon, payload: dict) -> bytes:
    """What the daemon *must* answer: the direct engine result."""
    _, body = serve_match(daemon.holder.current(),
                          parse_match_payload(json.dumps(payload).encode()))
    return protocol.encode(body)


class TestParity:
    def test_daemon_bytes_equal_direct_engine_bytes(self, daemon):
        status, raw, _ = request(daemon, "POST", "/v1/match", MATCH)
        assert status == 200
        assert raw == expected_bytes(daemon, MATCH)

    def test_parity_holds_after_reload_to_same_epoch(self, daemon):
        epoch = daemon.holder.current().epoch
        before = request(daemon, "POST", "/v1/match", MATCH)[1]
        status, raw, _ = request(
            daemon, "POST", "/admin/reload",
            {"lists": [{"name": n, "text": t} for n, t in SOURCES]})
        reload_body = json.loads(raw)
        assert (status, reload_body["status"]) == (200, "swapped")
        assert reload_body["epoch"] == epoch
        after = request(daemon, "POST", "/v1/match", MATCH)[1]
        assert after == before == expected_bytes(daemon, MATCH)

    def test_parity_holds_after_rolled_back_failed_reload(self, daemon):
        before = request(daemon, "POST", "/v1/match", MATCH)[1]
        status, raw, _ = request(
            daemon, "POST", "/admin/reload",
            {"lists": [{"name": "easylist", "text": "! empty\n"}]})
        assert status == 409
        assert json.loads(raw)["status"] == "rejected"
        after = request(daemon, "POST", "/v1/match", MATCH)[1]
        assert after == before == expected_bytes(daemon, MATCH)

    def test_successful_reload_changes_the_serving_epoch(self, daemon):
        epoch = daemon.holder.current().epoch
        status, raw, _ = request(
            daemon, "POST", "/admin/reload",
            {"lists": [{"name": "easylist",
                        "text": "||ads.example^\n||brand-new.example^"}]})
        assert status == 200
        assert json.loads(raw)["epoch"] != epoch
        served = json.loads(request(daemon, "POST", "/v1/match",
                                    MATCH)[1])
        assert served["epoch"] == json.loads(raw)["epoch"]


class TestShedding:
    def test_overload_sheds_429_with_retry_after(self, daemon):
        release = threading.Event()
        results = []

        def occupant():
            results.append(request(
                daemon, "POST", "/v1/match", MATCH,
                headers={"X-Repro-Delay-Ms": "1500"}))

        thread = threading.Thread(target=occupant)
        thread.start()
        # Wait for the occupant to actually hold the slot.
        for _ in range(100):
            if daemon.admission.inflight == 1:
                break
            threading.Event().wait(0.02)
        status, raw, headers = request(daemon, "POST", "/v1/match", MATCH)
        thread.join(timeout=30.0)
        release.set()
        assert status == 429
        shed = json.loads(raw)
        assert shed["outcome"] == "shed"
        assert shed["reason"] == "queue-full"
        assert float(headers["Retry-After"]) > 0.0
        assert results[0][0] == 200    # the occupant still completed

    def test_hopeless_deadline_is_shed_or_degraded_never_hung(
            self, daemon):
        status, raw, _ = request(
            daemon, "POST", "/v1/match",
            {"requests": [MATCH, MATCH]},
            headers={"X-Repro-Deadline-Ms": "0.001"})
        body = json.loads(raw)
        assert (status, body["outcome"]) in (
            (200, "degraded"), (429, "shed"))

    def test_bad_deadline_header_is_400(self, daemon):
        status, raw, _ = request(daemon, "POST", "/v1/match", MATCH,
                                 headers={"X-Repro-Deadline-Ms": "soon"})
        assert status == 400
        assert json.loads(raw)["outcome"] == "error"

    def test_malformed_body_is_400(self, daemon):
        status, raw, _ = request(daemon, "POST", "/v1/match",
                                 {"op": "check_request"})
        assert status == 400
        assert json.loads(raw)["outcome"] == "error"


class TestHealth:
    def test_healthz_reports_epoch_and_reload_state(self, daemon):
        status, raw, _ = request(daemon, "GET", "/healthz")
        body = json.loads(raw)
        assert status == 200
        assert body["epoch"] == daemon.holder.current().epoch
        assert body["reload"]["state"] == "idle"
        assert body["draining"] is False

    def test_readyz_ready_when_serving(self, daemon):
        status, raw, _ = request(daemon, "GET", "/readyz")
        assert status == 200
        assert json.loads(raw)["status"] == "ready"

    def test_unknown_paths_are_404(self, daemon):
        assert request(daemon, "GET", "/nope")[0] == 404
        assert request(daemon, "POST", "/nope", {})[0] == 404


def make_daemon(**config) -> ServeDaemon:
    holder = SnapshotHolder.from_sources(SOURCES)
    defaults = dict(port=0, max_inflight=2, max_queue=2,
                    default_deadline_ms=5_000.0, drain_timeout_s=10.0)
    defaults.update(config)
    return ServeDaemon(holder, ServeConfig(**defaults),
                       reloader=Reloader(holder))


class TestPrometheusEndpoint:
    def test_required_families_present_at_boot(self):
        """A scrape of a freshly booted daemon already exposes the
        latency histogram, every shed-reason counter, and the
        reload-epoch gauge — no traffic required."""
        with observe():
            instance = make_daemon()
            instance.start()
            try:
                status, raw, headers = request(
                    instance, "GET", "/metricz?format=prometheus")
            finally:
                instance.stop()
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        families = parse_prometheus_text(raw.decode("utf-8"))
        assert "serve_latency_ms" in families
        assert families["serve_latency_ms"]["type"] == "histogram"
        assert "serve_admission_shed_total" in families
        reasons = {labels["reason"] for _, labels, _ in
                   families["serve_admission_shed_total"]["samples"]}
        assert {"queue-full", "deadline-hopeless", "deadline-in-queue",
                "draining"} <= reasons
        assert "serve_reload_epoch" in families
        assert "serve_slo_burn_total" in families

    def test_traffic_lands_in_latency_histogram(self):
        with observe() as (registry, _):
            instance = make_daemon()
            instance.start()
            try:
                assert request(instance, "POST", "/v1/match",
                               MATCH)[0] == 200
            finally:
                instance.stop()
            flat = registry.flat()
        assert flat["serve.latency_ms.count"] == 1
        assert flat["serve.window.qps"] > 0.0

    def test_json_remains_the_default_format(self):
        with observe():
            instance = make_daemon()
            instance.start()
            try:
                status, raw, headers = request(instance, "GET", "/metricz")
            finally:
                instance.stop()
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        flat = json.loads(raw)
        assert "serve.window.qps" in flat

    def test_prometheus_empty_when_observability_disabled(self, daemon):
        status, raw, _ = request(daemon, "GET",
                                 "/metricz?format=prometheus")
        assert (status, raw) == (200, b"")


class TestTelemetryDrainFlush:
    def test_drain_seals_timeseries_and_dumps_flight(self, tmp_path):
        """The SIGTERM sequence must leave zero torn telemetry: every
        segment strictly verifiable, flight dump present with the
        drain marker event."""
        ts_path = str(tmp_path / "ts.jsonl")
        flight_path = str(tmp_path / "flight.jsonl")
        sampler = TimeSeriesSampler(
            RotatingJsonlExporter(ts_path, run_id="rid"), interval_s=0.05)
        flight = FlightRecorder(path=flight_path, run_id="rid")
        with observe(timeseries=sampler, flight=flight):
            instance = make_daemon(telemetry_interval_s=0.05)
            instance.start()
            try:
                assert request(instance, "POST", "/v1/match",
                               MATCH)[0] == 200
            finally:
                assert instance.drain_and_stop() is True
        series = load_timeseries(ts_path, strict=True)
        assert series.complete
        assert series.run_id == "rid"
        assert len(series.samples) >= 1        # the final drain sample
        dump = load_flight(flight_path)
        assert dump.reason == "drain"
        assert "serve.drain" in [e["kind"] for e in dump.events]

    def test_flush_is_idempotent_under_stop_race(self, tmp_path):
        ts_path = str(tmp_path / "ts.jsonl")
        sampler = TimeSeriesSampler(
            RotatingJsonlExporter(ts_path, run_id="rid"), interval_s=0.05)
        with observe(timeseries=sampler):
            instance = make_daemon()
            instance.start()
            instance.drain_and_stop()
            instance.drain_and_stop()          # second flush is a no-op
            instance.stop()
        assert load_timeseries(ts_path, strict=True).complete

    def test_plain_stop_leaves_stream_unsealed(self, tmp_path):
        """stop() without a drain is the crash path: the stream stays
        open (honest torn tail) but the ticker thread must not leak."""
        ts_path = str(tmp_path / "ts.jsonl")
        sampler = TimeSeriesSampler(
            RotatingJsonlExporter(ts_path, run_id="rid"), interval_s=0.05)
        with observe(timeseries=sampler):
            instance = make_daemon(telemetry_interval_s=0.01)
            instance.start()
            for _ in range(200):
                if sampler.samples_emitted:
                    break
                threading.Event().wait(0.01)
            instance.stop()
            assert instance._ticker is None
        assert not sampler.closed
        series = load_timeseries(ts_path)      # tolerant read still works
        assert series.complete is False


class TestDrain:
    def test_drain_finishes_inflight_and_refuses_new(self, daemon):
        results = []

        def occupant():
            results.append(request(
                daemon, "POST", "/v1/match", MATCH,
                headers={"X-Repro-Delay-Ms": "1000"}))

        thread = threading.Thread(target=occupant)
        thread.start()
        for _ in range(100):
            if daemon.admission.inflight == 1:
                break
            threading.Event().wait(0.02)
        assert daemon.admission.inflight == 1

        daemon.begin_drain()
        refused_status, refused_raw, _ = request(daemon, "POST",
                                                 "/v1/match", MATCH)
        ready_status, _, ready_headers = request(daemon, "GET", "/readyz")
        health_status = request(daemon, "GET", "/healthz")[0]
        reload_status = request(
            daemon, "POST", "/admin/reload",
            {"lists": [{"name": "x", "text": "||a.example^"}]})[0]

        drainer = threading.Thread(target=daemon.drain_and_stop)
        drainer.start()
        thread.join(timeout=30.0)
        drainer.join(timeout=30.0)

        assert refused_status == 503
        assert json.loads(refused_raw)["reason"] == "draining"
        assert ready_status == 503
        assert "Retry-After" in ready_headers
        assert health_status == 200         # liveness stays up
        assert reload_status == 503
        # The in-flight request was finished, not killed.
        assert results and results[0][0] == 200
        assert json.loads(results[0][1])["outcome"] == "served"
        assert daemon.stopped

    def test_drain_and_stop_is_clean_when_idle(self, daemon):
        assert daemon.drain_and_stop() is True
        assert daemon.stopped
