"""The wire protocol: parsing, canonical bytes, and verdict parity.

Parity is the load-bearing contract: :func:`repro.serve.protocol
.serve_match` over a frozen snapshot must produce byte-identical
results to calling the mutable :class:`AdblockEngine` directly.
"""

import json

import pytest

from repro.filters.engine import AdblockEngine, EngineSnapshot
from repro.filters.filterlist import parse_filter_list
from repro.filters.options import ContentType
from repro.serve import protocol
from repro.serve.protocol import (
    MatchRequest,
    ProtocolError,
    parse_match_payload,
    parse_match_request,
    serve_match,
)

EASYLIST = "||ads.example^\n||track.example^$third-party\n##.banner-ad"
WHITELIST = "@@||ads.example^$domain=friendly.example"


@pytest.fixture(scope="module")
def snapshot() -> EngineSnapshot:
    return EngineSnapshot.build([
        parse_filter_list(EASYLIST, name="easylist"),
        parse_filter_list(WHITELIST, name="exceptionrules"),
    ])


def body_of(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8")


class TestParsing:
    def test_defaults_to_check_request(self):
        request = parse_match_request(
            {"url": "http://ads.example/a.js", "content_type": "script",
             "page_host": "news.example", "request_host": "ads.example"})
        assert request.op == "check_request"
        assert request.content_type is ContentType.SCRIPT

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_match_request({"op": "launch_missiles"})

    def test_unknown_content_type_rejected(self):
        with pytest.raises(ProtocolError, match="content_type"):
            parse_match_request(
                {"url": "u", "content_type": "hologram",
                 "page_host": "p", "request_host": "r"})

    def test_missing_field_names_the_field(self):
        with pytest.raises(ProtocolError, match="'request_host'"):
            parse_match_request(
                {"url": "u", "content_type": "image", "page_host": "p"})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_match_request(["not", "a", "dict"])

    def test_bad_json_body_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_match_payload(b"{nope")

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_match_payload(body_of({"requests": []}))

    def test_batch_parses_each_item(self):
        requests = parse_match_payload(body_of({"requests": [
            {"op": "elemhide_stylesheet", "page_host": "a.example"},
            {"op": "document_privileges", "page_url": "http://b.example/",
             "page_host": "b.example"},
        ]}))
        assert [r.op for r in requests] == ["elemhide_stylesheet",
                                            "document_privileges"]


class TestEncode:
    def test_canonical_bytes(self):
        assert protocol.encode({"b": 1, "a": [2]}) == b'{"a":[2],"b":1}\n'

    def test_key_order_cannot_leak(self):
        first = protocol.encode({"x": 1, "y": 2})
        second = protocol.encode({"y": 2, "x": 1})
        assert first == second


class TestVerdictParity:
    """serve_match == direct engine calls, byte for byte."""

    CASES = [
        MatchRequest(op="check_request", url="http://ads.example/a.js",
                     content_type=ContentType.SCRIPT,
                     page_host="news.example",
                     request_host="ads.example"),
        MatchRequest(op="check_request", url="http://ads.example/a.js",
                     content_type=ContentType.SCRIPT,
                     page_host="friendly.example",
                     request_host="ads.example",
                     page_url="http://friendly.example/"),
        MatchRequest(op="check_request", url="http://clean.example/p.png",
                     content_type=ContentType.IMAGE,
                     page_host="news.example",
                     request_host="clean.example"),
        MatchRequest(op="document_privileges",
                     page_url="http://friendly.example/",
                     page_host="friendly.example"),
        MatchRequest(op="elemhide_stylesheet", page_host="news.example"),
    ]

    def test_served_results_match_direct_engine(self, snapshot):
        outcome, body = serve_match(snapshot, self.CASES)
        assert outcome == "served"

        engine = AdblockEngine()
        engine.subscribe(parse_filter_list(EASYLIST, name="easylist"))
        engine.subscribe(parse_filter_list(WHITELIST,
                                           name="exceptionrules"))
        # list_name_for is keyed on filter object identity, so the
        # direct engine's records go through its own frozen view.
        direct_view = engine.freeze()
        direct = []
        for case in self.CASES:
            if case.op == "document_privileges":
                direct.append(protocol.privileges_record(
                    engine.document_privileges(case.page_url,
                                               case.page_host),
                    direct_view))
            elif case.op == "elemhide_stylesheet":
                direct.append({"stylesheet":
                               engine.elemhide_stylesheet(case.page_host)})
            else:
                privileges = None
                if case.page_url:
                    privileges = engine.document_privileges(
                        case.page_url, case.page_host)
                direct.append(protocol.decision_record(
                    engine.check_request(case.url, case.content_type,
                                         case.page_host,
                                         case.request_host,
                                         privileges=privileges),
                    direct_view))
        assert protocol.encode({"results": body["results"]}) == \
            protocol.encode({"results": direct})

    def test_verdicts_cover_block_allow_and_exception(self, snapshot):
        _, body = serve_match(snapshot, self.CASES)
        verdicts = [r["verdict"] for r in body["results"][:3]]
        assert verdicts[0] == "block"
        assert verdicts[1] != "block"       # whitelisted page
        assert verdicts[2] != "block"       # clean request

    def test_sessions_share_snapshot_memo(self):
        fresh = EngineSnapshot.build([
            parse_filter_list(EASYLIST, name="easylist"),
            parse_filter_list(WHITELIST, name="exceptionrules"),
        ])
        assert len(fresh._privilege_cache) == 0
        serve_match(fresh, [self.CASES[1]])
        assert len(fresh._privilege_cache) == 1
        serve_match(fresh, [self.CASES[1]])     # second session, same memo
        assert len(fresh._privilege_cache) == 1


class TestDeadline:
    def test_no_deadline_serves_everything(self, snapshot):
        outcome, body = serve_match(snapshot, TestVerdictParity.CASES)
        assert outcome == "served"
        assert len(body["results"]) == len(TestVerdictParity.CASES)

    def test_expired_deadline_returns_completed_prefix(self, snapshot):
        calls = iter([False, False, True])
        outcome, body = serve_match(
            snapshot, TestVerdictParity.CASES[:3],
            deadline_expired=lambda: next(calls))
        assert outcome == "degraded"
        assert body["reason"] == "deadline-expired"
        assert body["completed"] == 2
        assert body["requested"] == 3
        assert len(body["results"]) == 2

    def test_degraded_prefix_equals_served_prefix(self, snapshot):
        """The prefix a degraded batch returns is not approximate."""
        _, full = serve_match(snapshot, TestVerdictParity.CASES[:3])
        calls = iter([False, True])
        _, cut = serve_match(snapshot, TestVerdictParity.CASES[:3],
                             deadline_expired=lambda: next(calls))
        assert cut["results"] == full["results"][:1]


class TestEnvelopes:
    def test_shed_maps_draining_to_503(self):
        status, body = protocol.shed("draining", retry_after=0.2,
                                     draining=True)
        assert (status, body["outcome"]) == (503, "shed")

    def test_shed_maps_overload_to_429(self):
        status, body = protocol.shed("queue-full", retry_after=1.0)
        assert status == 429
        assert body["retry_after"] == 1.0

    def test_error_defaults_to_400(self):
        status, body = protocol.error("nope")
        assert (status, body["outcome"]) == (400, "error")
