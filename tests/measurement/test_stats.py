"""Tests for the survey statistics (Tables 2/4, Figures 6/7/8)."""

import pytest

from repro.measurement.stats import (
    EcdfSeries,
    figure6_site_matches,
    figure7_ecdf,
    figure8_group_matrix,
    section51_headline,
    table2_partitions,
    table4_top_filters,
)


class TestTable2:
    def test_partition_counts_match_paper(self, site_survey, study):
        rows = table2_partitions(site_survey.whitelist,
                                 study.history.population.ranking)
        by_partition = {r.partition: r.count for r in rows}
        # Exact partition targets minus the handful of churned-away
        # publishers (removed A-groups and never-readded domains).
        assert abs(by_partition[100] - 33) <= 2
        assert abs(by_partition[500] - 112) <= 3
        assert abs(by_partition[1_000] - 167) <= 4
        assert abs(by_partition[5_000] - 316) <= 5
        assert abs(by_partition[1_000_000] - 1_286) <= 12
        assert abs(by_partition[None] - 1_990) <= 15

    def test_fractions(self, site_survey, study):
        rows = table2_partitions(site_survey.whitelist,
                                 study.history.population.ranking)
        for row in rows:
            if row.partition is not None:
                assert row.fraction == pytest.approx(
                    row.count / row.partition)

    def test_partitions_nested(self, site_survey, study):
        rows = table2_partitions(site_survey.whitelist,
                                 study.history.population.ranking)
        counts = [r.count for r in rows if r.partition is not None]
        # Rows are ordered largest partition first; counts must shrink.
        assert counts == sorted(counts, reverse=True)


class TestTable4:
    def test_rows_sorted_by_domain_count(self, site_survey):
        rows = table4_top_filters(site_survey.top5k)
        counts = [r.domains for r in rows]
        assert counts == sorted(counts, reverse=True)

    def test_top_three_are_the_google_trio(self, site_survey):
        rows = table4_top_filters(site_survey.top5k, top=3)
        texts = " ".join(r.filter_text for r in rows)
        assert "stats.g.doubleclick.net" in texts
        assert "googleadservices.com" in texts
        assert "gstatic.com" in texts

    def test_doubleclick_is_first(self, site_survey):
        rows = table4_top_filters(site_survey.top5k, top=1)
        assert "stats.g.doubleclick.net" in rows[0].filter_text

    def test_all_top_filters_unrestricted(self, site_survey):
        from repro.filters.classify import ScopeClass, classify_filter
        from repro.filters.parser import parse_filter

        for row in table4_top_filters(site_survey.top5k, top=8):
            scope = classify_filter(parse_filter(row.filter_text))
            assert scope is ScopeClass.UNRESTRICTED, row.filter_text

    def test_adsense_unrestricted_filter_in_top_20(self, site_survey):
        rows = table4_top_filters(site_survey.top5k, top=20)
        texts = [r.filter_text for r in rows]
        assert "@@||google.com/adsense/search/ads.js$script" in texts

    def test_influads_element_exception_observed(self, site_survey):
        rows = table4_top_filters(site_survey.top5k, top=30)
        assert any(r.filter_text == "#@##influads_block" for r in rows)


class TestFigure6:
    def test_bar_count_capped(self, site_survey):
        bars = figure6_site_matches(site_survey, top=50)
        assert len(bars) <= 50

    def test_sina_elided(self, site_survey):
        bars = figure6_site_matches(site_survey, top=50)
        assert all(b.domain != "sina.com.cn" for b in bars)

    def test_bars_rank_ordered(self, site_survey):
        bars = figure6_site_matches(site_survey, top=50)
        ranks = [b.rank for b in bars]
        assert ranks == sorted(ranks)

    def test_every_bar_has_a_match(self, site_survey):
        bars = figure6_site_matches(site_survey, top=50)
        assert all(b.whitelist_matches + b.easylist_matches_with
                   + b.easylist_matches_without > 0 for b in bars)

    def test_bold_and_unbold_sites_present(self, site_survey):
        bars = figure6_site_matches(site_survey, top=50)
        assert any(b.explicitly_whitelisted for b in bars)
        assert any(not b.explicitly_whitelisted for b in bars)

    def test_unbold_sites_with_whitelist_matches_exist(self, site_survey):
        # The paper: 12 domains not explicitly whitelisted nevertheless
        # activate whitelist filters (e.g. youtube.com).
        bars = figure6_site_matches(site_survey, top=50)
        implicit = [b for b in bars
                    if not b.explicitly_whitelisted
                    and b.whitelist_matches > 0]
        assert implicit

    def test_whitelist_off_config_has_more_blocking(self, site_survey):
        bars = figure6_site_matches(site_survey, top=50)
        more = sum(1 for b in bars
                   if b.easylist_matches_without >= b.easylist_matches_with)
        assert more >= len(bars) * 0.9


class TestEcdf:
    def test_monotone(self):
        series = EcdfSeries.from_values([5, 1, 3, 2, 2])
        assert list(series.values) == sorted(series.values)
        assert list(series.fractions) == sorted(series.fractions)
        assert series.fractions[-1] == pytest.approx(1.0)

    def test_quantile(self):
        series = EcdfSeries.from_values(list(range(1, 101)))
        assert series.quantile(0.5) == 50
        assert series.quantile(1.0) == 100

    def test_fraction_at_least(self):
        series = EcdfSeries.from_values([1, 2, 3, 4])
        assert series.fraction_at_least(3) == pytest.approx(0.5)

    def test_empty_quantile_rejected(self):
        with pytest.raises(ValueError):
            EcdfSeries.from_values([]).quantile(0.5)

    def test_figure7_totals_dominate_distinct(self, site_survey):
        fig = figure7_ecdf(site_survey.top5k)
        assert fig.activating_domains > 0
        assert max(fig.total_matches.values) >= \
            max(fig.distinct_filters.values)

    def test_figure7_counts_only_activating_domains(self, site_survey):
        fig = figure7_ecdf(site_survey.top5k)
        assert min(fig.total_matches.values) >= 1


class TestFigure8:
    def test_matrix_covers_all_groups(self, site_survey):
        matrix = figure8_group_matrix(site_survey)
        assert matrix.groups == ["top-5k", "5k-50k", "50k-100k",
                                 "100k-1m"]

    def test_top_filters_ordered(self, site_survey):
        matrix = figure8_group_matrix(site_survey, top_filters=10)
        assert len(matrix.filters) <= 10

    def test_most_filters_peak_in_top_group(self, site_survey):
        matrix = figure8_group_matrix(site_survey, top_filters=10)
        peaks = [matrix.peak_group(f) for f in matrix.filters]
        assert peaks.count("top-5k") >= len(peaks) // 2

    def test_conversion_outlier_peaks_deep(self, site_survey):
        matrix = figure8_group_matrix(site_survey, top_filters=50)
        outlier = "@@||google-analytics.com/conversion/^$image"
        if outlier in matrix.filters:
            assert matrix.peak_group(outlier) == "100k-1m"

    def test_rates_are_probabilities(self, site_survey):
        matrix = figure8_group_matrix(site_survey, top_filters=20)
        for group in matrix.groups:
            for text in matrix.filters:
                assert 0.0 <= matrix.rate(group, text) <= 1.0


class TestSection51:
    def test_headline_fractions_near_paper(self, site_survey):
        head = section51_headline(site_survey.top5k)
        n = head.surveyed
        assert abs(head.any_activation / n - 0.791) < 0.06
        assert abs(head.whitelist_activation / n - 0.587) < 0.06

    def test_mean_distinct_near_paper(self, site_survey):
        head = section51_headline(site_survey.top5k)
        assert abs(head.mean_distinct_filters - 2.6) < 0.5

    def test_p95_at_least_near_12(self, site_survey):
        head = section51_headline(site_survey.top5k)
        assert head.p95_total_matches >= 8
