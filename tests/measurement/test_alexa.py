"""Unit tests for the synthetic Alexa ranking and study population."""

import pytest

from repro.measurement.alexa import (
    AlexaRanking,
    GOOGLE_CCTLD_COUNT,
    PARTITION_TARGETS,
    TOTAL_WHITELISTED_E2LDS,
    build_study_population,
    google_cctld_domains,
    whitelisted_rank_sets,
)


@pytest.fixture(scope="module")
def ranking():
    return AlexaRanking(seed=2015)


@pytest.fixture(scope="module")
def population():
    return build_study_population(seed=2015)


class TestRanking:
    def test_pinned_domains_at_their_ranks(self, ranking):
        assert ranking.domain_at(1) == "google.com"
        assert ranking.domain_at(31) == "reddit.com"
        assert ranking.domain_at(1916) == "toyota.com"

    def test_generated_names_deterministic(self, ranking):
        assert ranking.domain_at(777) == ranking.domain_at(777)

    def test_rank_of_inverts_domain_at(self, ranking):
        for rank in (1, 31, 500, 12_345, 999_999):
            assert ranking.rank_of(ranking.domain_at(rank)) == rank

    def test_rank_of_unknown_domain(self, ranking):
        assert ranking.rank_of("not-in-the-ranking.example") is None

    def test_out_of_range_rank_rejected(self, ranking):
        with pytest.raises(IndexError):
            ranking.domain_at(0)
        with pytest.raises(IndexError):
            ranking.domain_at(1_000_001)

    def test_no_duplicate_domains_in_top_slice(self, ranking):
        domains = [ranking.domain_at(r) for r in range(1, 2_001)]
        assert len(set(domains)) == len(domains)

    def test_category_stable_and_pinned_aware(self, ranking):
        assert ranking.category_of("reddit.com") == "social"
        assert ranking.category_of("somesite.com") == \
            ranking.category_of("somesite.com")

    def test_pin_conflicts_rejected(self):
        ranking = AlexaRanking(seed=1)
        ranking.pin("newsite.zz", 123_456)
        with pytest.raises(ValueError):
            ranking.pin("other.zz", 123_456)
        with pytest.raises(ValueError):
            ranking.pin("newsite.zz", 654_321)


class TestSampling:
    def test_stratum_bounds_respected(self, ranking):
        sample = ranking.sample_stratum(5_001, 50_000, 100, salt="t")
        assert all(5_001 <= rank <= 50_000 for rank, _ in sample)

    def test_stratum_distinct_and_sorted(self, ranking):
        sample = ranking.sample_stratum(5_001, 50_000, 500, salt="t")
        ranks = [rank for rank, _ in sample]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)

    def test_stratum_deterministic_per_salt(self, ranking):
        a = ranking.sample_stratum(100_001, 1_000_000, 50, salt="x")
        b = ranking.sample_stratum(100_001, 1_000_000, 50, salt="x")
        c = ranking.sample_stratum(100_001, 1_000_000, 50, salt="y")
        assert a == b
        assert a != c

    def test_oversized_sample_rejected(self, ranking):
        with pytest.raises(ValueError):
            ranking.sample_stratum(1, 10, 11)

    def test_top(self, ranking):
        top = ranking.top(10)
        assert top[0] == (1, "google.com")
        assert len(top) == 10


class TestWhitelistedRanks:
    def test_partition_targets_exact(self, ranking):
        designated = whitelisted_rank_sets(ranking)
        for bound, target in PARTITION_TARGETS.items():
            assert designated.count_within(bound) == target, bound

    def test_total_is_1990(self, ranking):
        designated = whitelisted_rank_sets(ranking)
        assert designated.total == TOTAL_WHITELISTED_E2LDS

    def test_non_whitelisted_pinned_excluded(self, ranking):
        designated = whitelisted_rank_sets(ranking)
        from repro.web.sites import PINNED_PROFILES

        for profile in PINNED_PROFILES.values():
            if not profile.is_whitelisted_publisher:
                assert profile.rank not in designated.ranks


class TestGoogleCctlds:
    def test_count(self):
        domains = google_cctld_domains()
        assert len(domains) == GOOGLE_CCTLD_COUNT
        assert len(set(domains)) == GOOGLE_CCTLD_COUNT

    def test_distinct_e2lds(self):
        from repro.web.url import registered_domain

        domains = google_cctld_domains()
        e2lds = {registered_domain(d) for d in domains}
        assert len(e2lds) == GOOGLE_CCTLD_COUNT


class TestStudyPopulation:
    def test_publisher_count(self, population):
        assert len(population.publishers) == TOTAL_WHITELISTED_E2LDS

    def test_kind_partition(self, population):
        kinds = {p.kind for p in population.publishers}
        assert kinds == {"pinned", "google-cctld", "generic"}
        assert len(population.by_kind("google-cctld")) == \
            GOOGLE_CCTLD_COUNT

    def test_ranked_cctlds_resolve_in_ranking(self, population):
        ranked = [p for p in population.by_kind("google-cctld")
                  if p.rank is not None]
        assert ranked
        for publisher in ranked[:20]:
            assert population.ranking.domain_at(publisher.rank) == \
                publisher.e2ld

    def test_unranked_count(self, population):
        unranked = [p for p in population.publishers if p.rank is None]
        ranked = [p for p in population.publishers if p.rank is not None]
        assert len(ranked) == PARTITION_TARGETS[1_000_000]
        assert len(unranked) == TOTAL_WHITELISTED_E2LDS - len(ranked)

    def test_unique_e2lds(self, population):
        e2lds = [p.e2ld for p in population.publishers]
        assert len(set(e2lds)) == len(e2lds)
