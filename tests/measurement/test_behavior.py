"""Tests for the filter-behaviour characterisation (future-work module)."""

from repro.measurement.behavior import (
    characterize_filters,
    scope_utilisation,
)


class TestCharacterize:
    def test_gstatic_is_fully_needless(self, site_survey):
        report = characterize_filters(site_survey.top5k)
        gstatic = report.filters.get("@@||gstatic.com^$third-party")
        assert gstatic is not None
        assert gstatic.needless_fraction == 1.0
        assert gstatic in report.fully_needless

    def test_doubleclick_not_needless(self, site_survey):
        report = characterize_filters(site_survey.top5k)
        dc = report.filters.get(
            "@@||stats.g.doubleclick.net^$script,image")
        assert dc is not None
        assert dc.needless_fraction < 0.1

    def test_tracking_vs_visible_partition(self, site_survey):
        report = characterize_filters(site_survey.top5k)
        tracking = {b.filter_text for b in report.tracking_only_filters}
        visible = {b.filter_text for b in report.visible_ad_filters}
        assert not (tracking & visible)
        assert tracking or visible

    def test_syndication_filter_is_visible_class(self, site_survey):
        report = characterize_filters(site_survey.top5k)
        synd = report.filters.get(
            "@@||pagead2.googlesyndication.com^$third-party")
        assert synd is not None
        assert not synd.tracking_only

    def test_overall_needless_rate_bounded(self, site_survey):
        report = characterize_filters(site_survey.top5k)
        rate = report.needless_activation_rate()
        # gstatic is ~a quarter of whitelist activity, so the needless
        # rate is substantial but well below half.
        assert 0.05 < rate < 0.5

    def test_domain_counts_consistent_with_activations(self, site_survey):
        report = characterize_filters(site_survey.top5k)
        for behavior in report.filters.values():
            assert len(behavior.domains) <= behavior.activations
            assert behavior.visible_ad_domains <= behavior.domains


class TestScopeUtilisation:
    def test_restricted_filters_only(self, site_survey):
        utilisation = scope_utilisation(site_survey)
        assert "@@||gstatic.com^$third-party" not in utilisation

    def test_values_are_fractions(self, site_survey):
        utilisation = scope_utilisation(site_survey)
        assert utilisation
        assert all(0.0 <= v <= 1.0 for v in utilisation.values())

    def test_observed_publisher_filters_fully_utilised(self, site_survey):
        utilisation = scope_utilisation(site_survey)
        single_domain = {
            text: value for text, value in utilisation.items()
            if "domain=" in text and "|" not in text.split("domain=")[1]
        }
        assert single_domain
        # A single-domain filter that activated was necessarily
        # activated on (a subdomain of) its one declared domain.
        assert all(v == 1.0 for v in single_domain.values())
