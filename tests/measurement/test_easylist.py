"""Unit tests for the synthetic EasyList."""

from repro.measurement.easylist import EASYLIST_FILLER_COUNT, build_easylist
from repro.web.adnetworks import NETWORK_CATALOG


class TestBuildEasylist:
    def test_size(self):
        flist = build_easylist()
        assert len(flist) > EASYLIST_FILLER_COUNT

    def test_no_invalid_filters(self):
        assert build_easylist().invalid_filters == []

    def test_catalog_blocking_filters_present(self):
        texts = set(build_easylist().filter_texts())
        for net in NETWORK_CATALOG:
            for flt in net.blocking_filters:
                assert flt in texts, flt

    def test_no_gstatic_filter(self):
        # The gstatic whitelist exception must be needless (Section 5.1):
        # EasyList deliberately contains nothing matching gstatic.com.
        assert not any("gstatic" in text
                       for text in build_easylist().filter_texts())

    def test_no_exception_filters(self):
        flist = build_easylist()
        assert flist.exception_filters == []

    def test_element_filters_present(self):
        flist = build_easylist()
        selectors = {f.selector_text for f in flist.element_filters}
        assert ".banner-ad" in selectors
        assert "#influads_block" in selectors

    def test_metadata(self):
        assert build_easylist().metadata["title"] == "EasyList"

    def test_deterministic(self):
        assert build_easylist().filter_texts() == \
            build_easylist().filter_texts()

    def test_filler_filters_never_match_synthetic_web(self):
        from repro.filters.engine import AdblockEngine, Verdict
        from repro.filters.options import ContentType
        from repro.web.sites import build_page, profile_for_domain

        engine = AdblockEngine()
        engine.subscribe(build_easylist())
        page = build_page(profile_for_domain("benign-nothing.org", 4242))
        from repro.web.url import parse_url

        for request in page.requests:
            if request.network:
                continue  # ad requests legitimately match
            decision = engine.check_request(
                request.url, request.content_type,
                "benign-nothing.org", parse_url(request.url).host)
            assert decision.verdict is not Verdict.BLOCK, request.url
