"""Unit tests for the four Section 5 sample groups."""

from repro.measurement.alexa import AlexaRanking
from repro.measurement.samples import SAMPLE_GROUP_SPECS, build_samples


class TestBuildSamples:
    def test_four_groups(self):
        groups = build_samples(AlexaRanking(seed=1), top_n=100,
                               stratum_size=20)
        assert [g.name for g in groups] == [
            "top-5k", "5k-50k", "50k-100k", "100k-1m"]

    def test_top_group_exhaustive(self):
        groups = build_samples(AlexaRanking(seed=1), top_n=100,
                               stratum_size=20)
        top = groups[0]
        assert len(top) == 100
        assert [t.rank for t in top.targets] == list(range(1, 101))

    def test_strata_within_bounds(self):
        groups = build_samples(AlexaRanking(seed=1), top_n=10,
                               stratum_size=50)
        bounds = {spec[0]: (spec[2], spec[3])
                  for spec in SAMPLE_GROUP_SPECS}
        for group in groups[1:]:
            low, high = bounds[group.name]
            for target in group.targets:
                assert low <= target.rank <= high, group.name

    def test_group_indexes(self):
        groups = build_samples(AlexaRanking(seed=1), top_n=10,
                               stratum_size=5)
        assert [g.group_index for g in groups] == [0, 1, 2, 3]
        for group in groups:
            assert all(t.group_index == group.group_index
                       for t in group.targets)

    def test_categories_attached(self):
        groups = build_samples(AlexaRanking(seed=1), top_n=50,
                               stratum_size=5)
        assert all(t.category for g in groups for t in g.targets)

    def test_paper_scale_defaults(self):
        groups = build_samples(AlexaRanking(seed=1))
        assert len(groups[0]) == 5_000
        assert all(len(g) == 1_000 for g in groups[1:])

    def test_deterministic(self):
        a = build_samples(AlexaRanking(seed=1), top_n=10, stratum_size=30)
        b = build_samples(AlexaRanking(seed=1), top_n=10, stratum_size=30)
        assert a[3].targets == b[3].targets
