"""Tests for the Section 5 survey harness (scaled-down runs)."""

from repro.measurement.survey import (
    EASYLIST_NAME,
    WHITELIST_NAME,
    build_engines,
    make_profile_factory,
)
from repro.web.crawler import CrawlTarget


class TestBuildEngines:
    def test_default_config_has_both_lists(self, history):
        engine, easylist, whitelist = build_engines(history)
        assert [s.name for s in engine.subscriptions] == [
            EASYLIST_NAME, WHITELIST_NAME]
        assert len(whitelist) > 5_000
        assert len(easylist) > 1_000

    def test_whitelist_disabled(self, history):
        engine, _, _ = build_engines(history, with_whitelist=False)
        assert [s.name for s in engine.subscriptions] == [EASYLIST_NAME]


class TestProfileFactory:
    def test_generic_publisher_gets_filters(self, history):
        factory = make_profile_factory(history)
        # Find a generic publisher that exists in the directory and is
        # inside the ranking.
        ranking = history.population.ranking
        for publisher in history.population.generic_pool:
            if publisher.rank is None:
                continue
            if publisher.e2ld not in history.publisher_directory:
                continue
            profile = factory(CrawlTarget(domain=publisher.e2ld,
                                          rank=publisher.rank))
            if profile.inert:
                continue
            assert profile.is_whitelisted_publisher
            assert "generic-publisher-adserv" in profile.networks
            return
        raise AssertionError("no ranked generic publisher found")

    def test_non_publisher_untouched(self, history):
        factory = make_profile_factory(history)
        profile = factory(CrawlTarget(domain="never-whitelisted-x.com",
                                      rank=4_999))
        assert not profile.is_whitelisted_publisher

    def test_pinned_profiles_pass_through(self, history):
        from repro.web.sites import PINNED_PROFILES

        factory = make_profile_factory(history)
        profile = factory(CrawlTarget(domain="reddit.com", rank=31))
        assert profile is PINNED_PROFILES["reddit.com"]


class TestSurveyResult:
    def test_both_configurations_present(self, site_survey):
        assert set(site_survey.records) == set(
            site_survey.records_easylist_only)

    def test_group_sizes(self, site_survey, study):
        assert len(site_survey.top5k) == study.config.survey.top_n
        for group in site_survey.groups[1:]:
            assert len(site_survey.records[group.name]) == \
                study.config.survey.stratum_size

    def test_whitelist_attached(self, site_survey):
        assert site_survey.whitelist is not None
        assert site_survey.whitelist.name == WHITELIST_NAME

    def test_easylist_only_run_has_no_whitelist_activations(
            self, site_survey):
        for records in site_survey.records_easylist_only.values():
            for record in records:
                assert not any(
                    a.list_name == WHITELIST_NAME
                    for a in record.visit.activations)

    def test_whitelisted_publishers_activate_their_filters(
            self, site_survey):
        activated = 0
        for record in site_survey.top5k:
            if not record.profile.is_whitelisted_publisher:
                continue
            if record.profile.inert:
                continue
            own = set(record.profile.whitelist_filters)
            if own & record.visit.distinct_whitelist_filters:
                activated += 1
        assert activated >= 5

    def test_all_records_concatenates_groups(self, site_survey):
        total = sum(len(site_survey.records[g.name])
                    for g in site_survey.groups)
        assert len(site_survey.all_records()) == total
