"""Tests for the temporal (per-revision) survey extension."""

from datetime import date

from repro.measurement.temporal import (
    DEFAULT_SNAPSHOT_DATES,
    engine_at_revision,
    temporal_survey,
)


class TestEngineAtRevision:
    def test_early_revision_has_tiny_whitelist(self, history):
        engine = engine_at_revision(history, 0)
        whitelist = engine.subscriptions[1]
        assert len(whitelist) == 9

    def test_tip_revision_has_full_whitelist(self, history):
        engine = engine_at_revision(history, 988)
        # 5,936 filter lines, of which the 8 Rev-326 truncated ones do
        # not parse into active filters.
        whitelist = engine.subscriptions[1]
        assert len(whitelist) == 5_936 - 8
        assert len(whitelist.invalid_filters) == 8

    def test_early_engine_blocks_what_tip_allows(self, history):
        from repro.filters.engine import Verdict
        from repro.filters.options import ContentType

        url = "http://www.googleadservices.com/pagead/conversion.js"
        early = engine_at_revision(history, 0)
        tip = engine_at_revision(history, 988)
        blocked = early.check_request(url, ContentType.SCRIPT,
                                      "www.shop.example",
                                      "www.googleadservices.com")
        allowed = tip.check_request(url, ContentType.SCRIPT,
                                    "www.shop.example",
                                    "www.googleadservices.com")
        assert blocked.verdict is Verdict.BLOCK
        assert allowed.verdict is Verdict.ALLOW


class TestTemporalSurvey:
    def test_points_cover_snapshots(self, history):
        points = temporal_survey(history, top_n=120)
        assert len(points) == len(DEFAULT_SNAPSHOT_DATES)
        assert [p.when for p in points] == list(DEFAULT_SNAPSHOT_DATES)

    def test_filter_counts_grow(self, history):
        points = temporal_survey(history, top_n=60)
        counts = [p.whitelist_filters for p in points]
        assert counts == sorted(counts)
        assert counts[0] < 300
        assert counts[-1] == 5_936

    def test_activation_fraction_grows_strongly(self, history):
        points = temporal_survey(history, top_n=250)
        fractions = [p.whitelist_activation_fraction for p in points]
        # 2011's nine filters touch almost nothing; the 2015 whitelist
        # touches the survey's ~59%.
        assert fractions[0] < 0.10
        assert fractions[-1] > 0.45
        assert fractions[-1] > fractions[1] > fractions[0]

    def test_allowed_requests_grow(self, history):
        points = temporal_survey(history, top_n=250)
        assert points[-1].mean_allowed_requests > \
            points[0].mean_allowed_requests

    def test_custom_snapshots(self, history):
        points = temporal_survey(
            history, top_n=40,
            snapshot_dates=[date(2013, 6, 30), date(2014, 6, 30)])
        assert len(points) == 2
        assert points[0].rev < points[1].rev
