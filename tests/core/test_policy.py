"""Tests for personalised acceptability policies (Section 6 extension)."""

import pytest

from repro.core.policy import (
    CLASS_BLOCKING_FILTERS,
    derive_policy,
    policy_disagreement,
    policy_filter_list,
)
from repro.perception.ads import AdClass
from repro.perception.respondents import Respondent
from repro.perception.survey import run_perception_survey


@pytest.fixture(scope="module")
def small_result():
    return run_perception_survey(respondents=60, seed=11)


class TestDerivePolicy:
    def test_policy_has_score_per_class(self, small_result):
        policy = derive_policy(small_result, respondent_id=0)
        assert set(policy.scores) == set(AdClass)

    def test_deterministic(self, small_result):
        a = derive_policy(small_result, respondent_id=3)
        b = derive_policy(small_result, respondent_id=3)
        assert a.accepted == b.accepted

    def test_content_ads_usually_rejected(self, small_result):
        rejections = sum(
            1 for rid in range(60)
            if not derive_policy(small_result, rid).accepts(
                AdClass.CONTENT))
        # Content/grid ads fail the "clearly distinguished" criterion
        # for almost everyone (the paper's one point of agreement).
        assert rejections > 45

    def test_banner_ads_usually_accepted(self, small_result):
        acceptances = sum(
            1 for rid in range(60)
            if derive_policy(small_result, rid).accepts(AdClass.BANNER))
        assert acceptances > 30

    def test_threshold_monotone(self, small_result):
        lax = derive_policy(small_result, 5, threshold=-2.0)
        strict = derive_policy(small_result, 5, threshold=2.0)
        assert strict.accepted <= lax.accepted

    def test_annoyed_user_rejects_more(self):
        def population(annoyance):
            return [Respondent(respondent_id=0, browser="chrome",
                               uses_adblock=True, annoyance=annoyance,
                               discernment=0.0, acquiescence=0.0,
                               noise_scale=0.6)]

        calm = run_perception_survey(seed=5,
                                     population=population(-1.5))
        angry = run_perception_survey(seed=5,
                                      population=population(1.5))
        calm_policy = derive_policy(calm, 0)
        angry_policy = derive_policy(angry, 0)
        assert len(angry_policy.accepted) <= len(calm_policy.accepted)


class TestPolicyFilterList:
    def test_accept_everything_produces_empty_list(self, small_result):
        policy = derive_policy(small_result, 0, threshold=-10.0)
        assert policy.accepts_everything
        assert len(policy_filter_list(policy)) == 0

    def test_reject_everything_covers_all_classes(self, small_result):
        policy = derive_policy(small_result, 0, threshold=10.0)
        assert policy.rejects_everything
        flist = policy_filter_list(policy)
        texts = set(flist.filter_texts())
        for filters in CLASS_BLOCKING_FILTERS.values():
            assert set(filters) <= texts

    def test_all_policy_filters_parse(self):
        from repro.filters.parser import InvalidFilter, parse_filter

        for filters in CLASS_BLOCKING_FILTERS.values():
            for text in filters:
                assert not isinstance(parse_filter(text), InvalidFilter)

    def test_policy_list_reblocks_content_ads(self, small_result):
        from repro.filters.engine import AdblockEngine, Verdict
        from repro.filters.options import ContentType

        policy = derive_policy(small_result, 0, threshold=10.0)
        engine = AdblockEngine()
        engine.subscribe(policy_filter_list(policy))
        decision = engine.check_request(
            "http://cdn.taboola.com/libtrc/loader.js",
            ContentType.SCRIPT, "www.viralnova.com", "cdn.taboola.com")
        assert decision.verdict is Verdict.BLOCK


class TestDisagreement:
    def test_majority_disagrees_with_global_whitelist(self, small_result):
        fraction = policy_disagreement(small_result)
        # The paper's thesis: one policy cannot fit the population.
        assert fraction > 0.7

    def test_disagreement_bounded(self, small_result):
        fraction = policy_disagreement(small_result)
        assert 0.0 <= fraction <= 1.0
