"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


FAST = ("--fast",)


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "growth", "scope", "table2", "survey",
                        "parking", "exploit", "perception", "afilters",
                        "hygiene", "transparency", "blockable"):
            args = parser.parse_args(
                [command] + (["reddit.com"]
                             if command == "blockable" else []))
            assert args.command == command

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flags_accepted_after_subcommand(self):
        args = build_parser().parse_args(["table1", "--fast",
                                          "--seed", "7"])
        assert args.fast and args.seed == 7


class TestCommands:
    def test_table1(self):
        text = run_cli("table1", *FAST)
        assert "2011" in text and "5152" in text
        assert "2,011" not in text  # years render as years

    def test_growth(self):
        text = run_cli("growth", *FAST)
        assert "5,936" in text
        assert "jump: Rev 200" in text

    def test_scope(self):
        text = run_cli("scope", *FAST)
        assert "unrestricted: 156" in text
        assert "4 keys" in text

    def test_table2(self):
        text = run_cli("table2", *FAST)
        assert "Top 100" in text
        assert "33" in text

    def test_hygiene(self):
        text = run_cli("hygiene", *FAST)
        assert "duplicates: 35" in text

    def test_afilters(self):
        text = run_cli("afilters", *FAST)
        assert "61 added" in text
        assert "A7 re-added as A28" in text

    def test_transparency(self):
        text = run_cli("transparency", *FAST)
        assert "TRANSPARENCY REPORT" in text

    def test_exploit(self):
        text = run_cli("exploit", "--bits", "48", *FAST)
        assert "full bypass: True" in text

    def test_perception(self):
        text = run_cli("perception", *FAST)
        assert "Figure 9(d)" in text
        assert "disagreeing" in text

    def test_blockable_known_publisher(self):
        text = run_cli("blockable", "reddit.com", *FAST)
        assert "Blockable items" in text
        assert "allowed" in text

    def test_seed_changes_output(self):
        a = run_cli("growth", *FAST)
        b = run_cli("growth", "--seed", "7", *FAST)
        assert "jump: Rev 200" in a and "jump: Rev 200" in b
