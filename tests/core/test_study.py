"""Tests for the end-to-end study orchestration."""

from repro.core.study import AcceptableAdsStudy, StudyConfig


class TestCaching:
    def test_history_cached(self, study):
        assert study.history is study.history

    def test_scope_cached(self, study):
        assert study.scope is study.scope

    def test_survey_cached(self, study):
        assert study.site_survey is study.site_survey


class TestStages:
    def test_table1_shape(self, study):
        rows = study.table1()
        assert [r.year for r in rows] == [2011, 2012, 2013, 2014, 2015]

    def test_figure3_terminal_count(self, study):
        assert study.figure3()[-1].filters == 5_936

    def test_cadence(self, study):
        assert 1.0 <= study.cadence().days_per_update <= 2.0

    def test_parking_scan_services(self, study):
        assert set(study.parking_scan) == {
            "Sedo", "ParkingCrew", "RookMedia", "Uniregistry",
            "Digimedia"}

    def test_perception_population_size(self, study):
        assert study.perception.demographics.total == 305

    def test_transparency_report_mentions_key_numbers(self, study):
        report = study.transparency_report()
        assert "61 A-filter groups" in report
        assert "156 unrestricted" in report
        assert "35 duplicate" in report
        assert "8 malformed" in report


class TestConfig:
    def test_default_config(self):
        study = AcceptableAdsStudy()
        assert study.config.seed == 2015
        assert study.config.key_bits == 512

    def test_custom_seed_changes_history(self, study):
        from repro.measurement.survey import SurveyConfig

        other = AcceptableAdsStudy(StudyConfig(
            seed=99, key_bits=128,
            survey=SurveyConfig(top_n=10, stratum_size=5)))
        assert other.history.tip_lines() != study.history.tip_lines()
        # Structure is preserved across seeds even as content varies.
        lines = [l for l in other.history.tip_lines()
                 if l and not l.startswith("!")]
        assert len(lines) == 5_936
