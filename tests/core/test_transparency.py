"""Tests for the Section 8 transparency findings."""

from repro.core.transparency import collect_findings


class TestFindings:
    def test_undocumented_counts(self, study):
        findings = collect_findings(study)
        assert findings.undocumented_groups == 61
        assert findings.undocumented_filters >= 150

    def test_opaque_scope(self, study):
        findings = collect_findings(study)
        assert findings.unrestricted_filters == 156
        assert findings.sitekey_filters == 25
        assert findings.opaque_scope_filters == 181

    def test_sitekey_domains_scaled(self, study):
        findings = collect_findings(study)
        # The scaled zone scan extrapolates back near the paper's 2.68M.
        assert findings.sitekey_domains_lower_bound > 2_000_000

    def test_hygiene_numbers(self, study):
        findings = collect_findings(study)
        assert findings.duplicate_filters == 35
        assert findings.malformed_filters == 8
        assert findings.truncated_filters == 8

    def test_large_publishers_include_named_sites(self, study):
        findings = collect_findings(study)
        assert "google.com" in findings.large_whitelisted_publishers
        assert "reddit.com" in findings.large_whitelisted_publishers

    def test_large_publisher_count_near_table2(self, study):
        findings = collect_findings(study)
        # Table 2: 167 whitelisted e2LDs inside the top 1,000.
        assert abs(len(findings.large_whitelisted_publishers) - 167) <= 5
