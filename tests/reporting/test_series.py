"""Unit tests for figure-series rendering."""

import pytest

from repro.reporting.series import Series, find_jumps, sparkline


class TestSparkline:
    def test_width_resampling(self):
        line = sparkline(list(range(1_000)), width=50)
        assert len(line) <= 51

    def test_monotone_data_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7], width=8)
        assert list(line) == sorted(line)

    def test_constant_data(self):
        line = sparkline([5, 5, 5], width=3)
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestFindJumps:
    def test_largest_jump_found(self):
        values = [0, 1, 2, 50, 51, 52]
        jumps = find_jumps(values, top=1)
        assert jumps == [(3, 48)]

    def test_top_n_ordering(self):
        values = [0, 10, 10, 40, 40, 45]
        jumps = find_jumps(values, top=2)
        assert jumps[0][1] >= jumps[1][1]


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("x", (1, 2), (1,))

    def test_at_x(self):
        series = Series("growth", (0, 10, 20), (5, 15, 25))
        assert series.at_x(10) == 15
        assert series.at_x(15) == 15
        assert series.at_x(25) == 25

    def test_at_x_before_start_rejected(self):
        series = Series("growth", (10,), (5,))
        with pytest.raises(ValueError):
            series.at_x(5)

    def test_render_contains_label_and_range(self):
        series = Series("filters", (0, 1), (9.0, 5936.0))
        text = series.render()
        assert text.startswith("filters:")
        assert "5936" in text
