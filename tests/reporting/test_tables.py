"""Unit tests for the ASCII table renderer."""

from repro.obs import MetricsRegistry, Tracer
from repro.reporting.tables import (
    render_comparison,
    render_metrics_summary,
    render_table,
)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "333" in lines[3]

    def test_title(self):
        text = render_table(("x",), [(1,)], title="Table 1")
        assert text.startswith("Table 1")

    def test_number_formatting(self):
        text = render_table(("n",), [(1_234_567,)])
        assert "1,234,567" in text

    def test_float_formatting(self):
        text = render_table(("f",), [(0.12345,)])
        assert "0.123" in text

    def test_empty_rows(self):
        text = render_table(("a", "b"), [])
        assert len(text.splitlines()) == 2


class TestRenderComparison:
    def test_exact_match_flag(self):
        text = render_comparison("T", [("metric", 100, 100)])
        assert "==" in text

    def test_close_match_flag(self):
        text = render_comparison("T", [("metric", 100, 108)])
        assert "~" in text

    def test_mismatch_flag(self):
        text = render_comparison("T", [("metric", 100, 250)])
        assert "!" in text.splitlines()[-1]

    def test_non_numeric_values(self):
        text = render_comparison("T", [("who", "toyota.com", "toyota.com")])
        assert "toyota.com" in text

    def test_zero_paper_value(self):
        text = render_comparison("T", [("m", 0, 0), ("m2", 0, 3)])
        assert "=" in text


class TestRenderMetricsSummary:
    def _tracer(self) -> Tracer:
        tracer = Tracer(clock=iter(range(100)).__next__)
        with tracer.span("survey.run"):
            with tracer.span("survey.crawl"):
                pass
            with tracer.span("survey.crawl"):
                pass
        return tracer

    def test_empty_registry_renders_placeholder(self):
        text = render_metrics_summary(MetricsRegistry(), None)
        assert text.startswith("Observability summary")
        assert "Metrics" in text
        assert "(none recorded)" in text

    def test_none_inputs_render(self):
        text = render_metrics_summary(None, None, title="T")
        assert text.startswith("T")
        assert "(none recorded)" in text
        assert "Where the time went" not in text

    def test_metric_rows_from_flat_view(self):
        registry = MetricsRegistry()
        registry.counter("filters.engine.verdicts",
                         verdict="block").inc(12)
        registry.histogram("web.crawl.latency_ms",
                           bounds=(10.0,)).observe(4.0)
        text = render_metrics_summary(registry, None)
        assert "filters.engine.verdicts{verdict=block}" in text
        assert "12" in text
        assert "web.crawl.latency_ms.count" in text
        assert "(none recorded)" not in text

    def test_unicode_filter_text_label(self):
        registry = MetricsRegistry()
        registry.counter(
            "filters.top",
            filter="@@||müller-straße.de^$документ·広告").inc(3)
        text = render_metrics_summary(registry, None)
        assert "müller-straße" in text
        assert "документ·広告" in text
        # Column layout survives the multi-byte row.
        lines = [l for l in text.splitlines() if l]
        assert len({len(l) for l in lines
                    if l.startswith(("metric", "-", "filters."))}) >= 1

    def test_span_rollup_counts_and_share(self):
        text = render_metrics_summary(None, self._tracer())
        assert "Where the time went" in text
        run_row = next(l for l in text.splitlines()
                       if l.startswith("survey.run"))
        crawl_row = next(l for l in text.splitlines()
                         if l.startswith("survey.crawl"))
        # One run span at 100% of top-level time; two crawl spans
        # aggregated into a single row.
        assert "100.0%" in run_row
        assert crawl_row.split()[1] == "2"

    def test_empty_tracer_omits_span_table(self):
        text = render_metrics_summary(None, Tracer())
        assert "Where the time went" not in text
