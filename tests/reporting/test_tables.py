"""Unit tests for the ASCII table renderer."""

import os

from repro.obs import MetricsRegistry, Tracer, run_record, span_records
from repro.reporting.tables import (
    render_comparison,
    render_metrics_summary,
    render_summary_records,
    render_table,
)

_GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                       "observability_summary.txt")


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "333" in lines[3]

    def test_title(self):
        text = render_table(("x",), [(1,)], title="Table 1")
        assert text.startswith("Table 1")

    def test_number_formatting(self):
        text = render_table(("n",), [(1_234_567,)])
        assert "1,234,567" in text

    def test_float_formatting(self):
        text = render_table(("f",), [(0.12345,)])
        assert "0.123" in text

    def test_empty_rows(self):
        text = render_table(("a", "b"), [])
        assert len(text.splitlines()) == 2


class TestRenderComparison:
    def test_exact_match_flag(self):
        text = render_comparison("T", [("metric", 100, 100)])
        assert "==" in text

    def test_close_match_flag(self):
        text = render_comparison("T", [("metric", 100, 108)])
        assert "~" in text

    def test_mismatch_flag(self):
        text = render_comparison("T", [("metric", 100, 250)])
        assert "!" in text.splitlines()[-1]

    def test_non_numeric_values(self):
        text = render_comparison("T", [("who", "toyota.com", "toyota.com")])
        assert "toyota.com" in text

    def test_zero_paper_value(self):
        text = render_comparison("T", [("m", 0, 0), ("m2", 0, 3)])
        assert "=" in text


class TestRenderMetricsSummary:
    def _tracer(self) -> Tracer:
        tracer = Tracer(clock=iter(range(100)).__next__)
        with tracer.span("survey.run"):
            with tracer.span("survey.crawl"):
                pass
            with tracer.span("survey.crawl"):
                pass
        return tracer

    def test_empty_registry_renders_placeholder(self):
        text = render_metrics_summary(MetricsRegistry(), None)
        assert text.startswith("Observability summary")
        assert "Metrics" in text
        assert "(none recorded)" in text

    def test_none_inputs_render(self):
        text = render_metrics_summary(None, None, title="T")
        assert text.startswith("T")
        assert "(none recorded)" in text
        assert "Where the time went" not in text

    def test_metric_rows_and_distributions(self):
        registry = MetricsRegistry()
        registry.counter("filters.engine.verdicts",
                         verdict="block").inc(12)
        registry.histogram("web.crawl.latency_ms",
                           bounds=(10.0,)).observe(4.0)
        text = render_metrics_summary(registry, None)
        assert "filters.engine.verdicts{verdict=block}" in text
        assert "12" in text
        # Histograms render in their own Distributions table with
        # estimated percentiles, not as flat .count/.sum metric rows.
        assert "Distributions" in text
        assert "web.crawl.latency_ms" in text
        for column in ("p50", "p95", "p99"):
            assert column in text
        assert "(none recorded)" not in text

    def test_run_id_header(self):
        text = render_metrics_summary(MetricsRegistry(), None,
                                      run_id="ab12cd34ef567890")
        assert text.startswith(
            "Observability summary — run ab12cd34ef567890")

    def test_unicode_filter_text_label(self):
        registry = MetricsRegistry()
        registry.counter(
            "filters.top",
            filter="@@||müller-straße.de^$документ·広告").inc(3)
        text = render_metrics_summary(registry, None)
        assert "müller-straße" in text
        assert "документ·広告" in text
        # Column layout survives the multi-byte row.
        lines = [l for l in text.splitlines() if l]
        assert len({len(l) for l in lines
                    if l.startswith(("metric", "-", "filters."))}) >= 1

    def test_span_rollup_counts_and_share(self):
        text = render_metrics_summary(None, self._tracer())
        assert "Where the time went" in text
        run_row = next(l for l in text.splitlines()
                       if l.startswith("survey.run"))
        crawl_row = next(l for l in text.splitlines()
                         if l.startswith("survey.crawl"))
        # One run span at 100% of top-level time; two crawl spans
        # aggregated into a single row.
        assert "100.0%" in run_row
        assert crawl_row.split()[1] == "2"

    def test_empty_tracer_omits_span_table(self):
        text = render_metrics_summary(None, Tracer())
        assert "Where the time went" not in text


class TestSummaryGolden:
    """The full report, pinned to a golden file.

    Any formatting drift — label ordering, percentile rounding, table
    layout, the run-id header — shows up as a readable diff against
    ``tests/reporting/golden/observability_summary.txt``.
    """

    def _inputs(self):
        registry = MetricsRegistry()
        # Registered in non-sorted order on purpose: the renderer must
        # sort label sets deterministically.
        registry.counter("filters.engine.verdicts", verdict="block",
                         via="match").inc(12)
        registry.counter("filters.engine.verdicts", verdict="allow",
                         via="match").inc(5)
        registry.gauge("measurement.survey.targets").set(35)
        histogram = registry.histogram(
            "web.crawl.latency_ms", bounds=(10.0, 100.0, 1000.0))
        for value in (4.0, 42.0, 250.0, 980.0):
            histogram.observe(value)
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with tracer.span("survey.run", top_n=20):
            with tracer.span("survey.crawl", config="easylist+whitelist"):
                with tracer.span("web.crawl.visit",
                                 domain="example.com", unit=0):
                    pass
            with tracer.span("survey.crawl", config="easylist-only"):
                pass
        return registry, tracer

    def _golden(self) -> str:
        with open(_GOLDEN, encoding="utf-8") as handle:
            return handle.read()

    def test_live_render_matches_golden(self):
        registry, tracer = self._inputs()
        text = render_metrics_summary(registry, tracer,
                                      run_id="ab12cd34ef567890")
        assert text + "\n" == self._golden()

    def test_record_render_matches_live(self):
        """An artifact round-trip reproduces the live report exactly."""
        registry, tracer = self._inputs()
        records = ([run_record("ab12cd34ef567890")]
                   + registry.snapshot() + span_records(tracer))
        assert render_summary_records(records) + "\n" == self._golden()
