"""Unit tests for the ASCII table renderer."""

from repro.reporting.tables import render_comparison, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "333" in lines[3]

    def test_title(self):
        text = render_table(("x",), [(1,)], title="Table 1")
        assert text.startswith("Table 1")

    def test_number_formatting(self):
        text = render_table(("n",), [(1_234_567,)])
        assert "1,234,567" in text

    def test_float_formatting(self):
        text = render_table(("f",), [(0.12345,)])
        assert "0.123" in text

    def test_empty_rows(self):
        text = render_table(("a", "b"), [])
        assert len(text.splitlines()) == 2


class TestRenderComparison:
    def test_exact_match_flag(self):
        text = render_comparison("T", [("metric", 100, 100)])
        assert "==" in text

    def test_close_match_flag(self):
        text = render_comparison("T", [("metric", 100, 108)])
        assert "~" in text

    def test_mismatch_flag(self):
        text = render_comparison("T", [("metric", 100, 250)])
        assert "!" in text.splitlines()[-1]

    def test_non_numeric_values(self):
        text = render_comparison("T", [("who", "toyota.com", "toyota.com")])
        assert "toyota.com" in text

    def test_zero_paper_value(self):
        text = render_comparison("T", [("m", 0, 0), ("m2", 0, 3)])
        assert "=" in text
