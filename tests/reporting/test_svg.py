"""Unit tests for the SVG figure renderer."""

import pytest

from repro.reporting.svg import (
    SvgCanvas,
    grouped_bars,
    line_chart,
    stacked_bars,
)


def assert_valid_svg(text: str) -> None:
    import xml.etree.ElementTree as ET

    root = ET.fromstring(text)
    assert root.tag.endswith("svg")


class TestCanvas:
    def test_empty_canvas_is_valid(self):
        assert_valid_svg(SvgCanvas(100, 50).to_svg())

    def test_primitives_render(self):
        canvas = SvgCanvas(100, 100)
        canvas.rect(0, 0, 10, 10, fill="#fff")
        canvas.line(0, 0, 10, 10)
        canvas.polyline([(0, 0), (5, 5)], stroke="#000")
        canvas.text(5, 5, "hi & <bye>")
        text = canvas.to_svg()
        assert_valid_svg(text)
        assert "&amp;" in text  # text content is escaped

    def test_rotated_text(self):
        canvas = SvgCanvas(100, 100)
        canvas.text(5, 5, "label", rotate=-45)
        assert "rotate(-45" in canvas.to_svg()


class TestLineChart:
    def test_single_series(self):
        svg = line_chart({"s": ([0, 1, 2], [9, 100, 5936])},
                         title="growth")
        assert_valid_svg(svg)
        assert "growth" in svg
        assert "polyline" in svg

    def test_multi_series_distinct_colors(self):
        svg = line_chart({"a": ([0, 1], [0, 1]),
                          "b": ([0, 1], [1, 0])}, title="t")
        assert svg.count("polyline") == 2

    def test_constant_series_does_not_crash(self):
        assert_valid_svg(line_chart({"c": ([0, 1], [5, 5])}, title="t"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({}, title="t")


class TestGroupedBars:
    def test_basic(self):
        svg = grouped_bars(["a", "b"], {"g1": [1, 2], "g2": [3, 4]},
                           title="fig6")
        assert_valid_svg(svg)
        assert svg.count("<rect") >= 5  # background + 4 bars

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_bars(["a"], {"g": [1, 2]}, title="t")

    def test_bold_labels(self):
        svg = grouped_bars(["a", "b"], {"g": [1, 2]}, title="t",
                           bold=[True, False])
        assert '#000' in svg and '#666' in svg


class TestStackedBars:
    def test_basic(self):
        svg = stacked_bars(["ad1", "ad2"],
                           {"agree": [0.5, 0.2],
                            "disagree": [0.5, 0.8]}, title="fig9")
        assert_valid_svg(svg)

    def test_zero_row_tolerated(self):
        svg = stacked_bars(["x"], {"a": [0.0], "b": [0.0]}, title="t")
        assert_valid_svg(svg)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stacked_bars(["a", "b"], {"s": [1.0]}, title="t")


class TestEndToEnd:
    def test_figure3_from_real_history(self, history):
        from repro.history.analysis import growth_series

        points = growth_series(history.repository)
        svg = line_chart(
            {"filters": ([p.rev for p in points],
                         [p.filters for p in points])},
            title="Figure 3")
        assert_valid_svg(svg)
        assert "5,936" in svg or "5936" in svg
