"""The documentation's links and code references must not rot.

Walks ``README.md`` and ``docs/*.md`` and verifies that

* every relative markdown link resolves to an existing file;
* every backticked repo path (``src/...``, ``docs/...``, ``tests/...``,
  ``benchmarks/...``, ``examples/...``) exists;
* every backticked dotted ``repro.*`` reference resolves to a real
  module — and, when it names an attribute, the attribute exists.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

DOCS = sorted([REPO / "README.md"] + list((REPO / "docs").glob("*.md")))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE_RE = re.compile(r"`([^`\n]+)`")
PATH_PREFIXES = ("src/", "docs/", "tests/", "benchmarks/", "examples/")
DOTTED_RE = re.compile(r"^repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+$")


def _prose(doc: Path) -> str:
    """Document text with fenced code blocks removed."""
    return FENCE_RE.sub("", doc.read_text(encoding="utf-8"))


def _doc_ids(paths):
    return [p.relative_to(REPO).as_posix() for p in paths]


def test_doc_set_nonempty():
    names = _doc_ids(DOCS)
    assert "README.md" in names
    assert "docs/ARCHITECTURE.md" in names
    assert "docs/OBSERVABILITY.md" in names


@pytest.mark.parametrize("doc", DOCS, ids=_doc_ids(DOCS))
def test_relative_links_resolve(doc):
    broken = []
    for target in LINK_RE.findall(doc.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = (doc.parent / target.split("#", 1)[0]).resolve()
        if not path.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken links {broken}"


@pytest.mark.parametrize("doc", DOCS, ids=_doc_ids(DOCS))
def test_backticked_paths_exist(doc):
    missing = []
    for token in INLINE_CODE_RE.findall(_prose(doc)):
        token = token.strip()
        if "/" not in token or not token.startswith(PATH_PREFIXES):
            continue
        if any(ch in token for ch in "*{} "):
            continue  # glob patterns and prose
        if not (REPO / token.rstrip("/")).exists():
            missing.append(token)
    assert not missing, f"{doc.name}: missing paths {missing}"


def _check_dotted(ref: str) -> str | None:
    """Return an error string if ``ref`` doesn't resolve, else None."""
    parts = ref.split(".")
    # Longest prefix that exists on disk as a package or module.
    depth = 1
    if not (SRC / parts[0]).is_dir():
        return f"{ref}: no src/{parts[0]} package"
    for i in range(2, len(parts) + 1):
        candidate = SRC.joinpath(*parts[:i])
        if candidate.is_dir() or candidate.with_suffix(".py").is_file():
            depth = i
        else:
            break
    module = importlib.import_module(".".join(parts[:depth]))
    obj = module
    for attr in parts[depth:]:
        try:
            obj = getattr(obj, attr)
        except AttributeError:
            return f"{ref}: {module.__name__} has no attribute {attr!r}"
    return None


@pytest.mark.parametrize("doc", DOCS, ids=_doc_ids(DOCS))
def test_dotted_repro_references_resolve(doc):
    errors = []
    for token in INLINE_CODE_RE.findall(_prose(doc)):
        token = token.strip().rstrip("()")
        if DOTTED_RE.match(token):
            error = _check_dotted(token)
            if error:
                errors.append(error)
    assert not errors, f"{doc.name}: {errors}"
