"""Tests for the perception study's stimulus taxonomy."""

from repro.perception.ads import (
    AdClass,
    SURVEY_ADS,
    SURVEY_SITES,
    ad_by_label,
    ads_in_class,
)


class TestTaxonomy:
    def test_every_site_has_at_least_one_ad(self):
        for site in SURVEY_SITES:
            assert any(ad.site == site for ad in SURVEY_ADS), site

    def test_labels_unique(self):
        labels = [ad.label for ad in SURVEY_ADS]
        assert len(labels) == len(set(labels))

    def test_ad_by_label(self):
        assert ad_by_label("Google #2").site == "google.com"

    def test_unknown_label_raises(self):
        import pytest

        with pytest.raises(KeyError):
            ad_by_label("Nonexistent #9")

    def test_ads_in_class_partition(self):
        total = sum(len(ads_in_class(c)) for c in AdClass)
        assert total == len(SURVEY_ADS)

    def test_google2_is_the_most_attention_grabbing(self):
        top = max(SURVEY_ADS, key=lambda ad: ad.latent_attention)
        assert top.label == "Google #2"

    def test_grid_ads_least_distinguished(self):
        bottom = min(SURVEY_ADS, key=lambda ad: ad.latent_distinguished)
        assert bottom.site == "viralnova.com"

    def test_content_class_blends_with_content(self):
        for ad in ads_in_class(AdClass.CONTENT):
            assert ad.latent_distinguished < 0, ad.label

    def test_banner_class_clearly_separated(self):
        for ad in ads_in_class(AdClass.BANNER):
            assert ad.latent_distinguished > 0.5, ad.label

    def test_sites_are_pinned_profiles(self):
        from repro.web.sites import PINNED_PROFILES

        for site in SURVEY_SITES:
            assert site in PINNED_PROFILES

    def test_survey_sites_show_whitelisted_ads(self):
        """Each survey site is an Acceptable Ads participant — the paper
        chose sites whose ads Adblock Plus allows."""
        from repro.web.sites import PINNED_PROFILES

        for site in SURVEY_SITES:
            assert PINNED_PROFILES[site].is_whitelisted_publisher, site
