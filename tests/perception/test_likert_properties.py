"""Property-based tests for the Likert machinery (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.perception.likert import (
    Likert,
    LikertDistribution,
    latent_to_likert,
)

_RATINGS = st.lists(st.sampled_from(list(Likert)), min_size=1,
                    max_size=300)


class TestLatentMappingProperties:
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_total_function(self, latent):
        assert latent_to_likert(latent) in Likert

    @given(st.floats(-10, 10), st.floats(0, 5))
    def test_monotone(self, latent, delta):
        assert latent_to_likert(latent + delta) >= latent_to_likert(latent)


class TestDistributionProperties:
    @given(_RATINGS)
    def test_mean_bounded(self, ratings):
        dist = LikertDistribution.from_responses(ratings)
        assert -2.0 <= dist.mean <= 2.0

    @given(_RATINGS)
    def test_variance_bounded(self, ratings):
        dist = LikertDistribution.from_responses(ratings)
        assert 0.0 <= dist.variance <= 4.0

    @given(_RATINGS)
    def test_fractions_partition(self, ratings):
        dist = LikertDistribution.from_responses(ratings)
        total = (dist.agree_fraction + dist.disagree_fraction
                 + dist.fraction(Likert.NEUTRAL))
        assert abs(total - 1.0) < 1e-9

    @given(_RATINGS)
    def test_counts_sum_to_n(self, ratings):
        dist = LikertDistribution.from_responses(ratings)
        assert sum(dist.counts) == dist.n == len(ratings)

    @given(_RATINGS, _RATINGS)
    def test_merge_is_concatenation(self, a, b):
        merged = LikertDistribution.from_responses(a).merged(
            LikertDistribution.from_responses(b))
        direct = LikertDistribution.from_responses(a + b)
        assert merged == direct

    @given(_RATINGS)
    def test_mean_matches_direct_computation(self, ratings):
        dist = LikertDistribution.from_responses(ratings)
        direct = sum(int(r) for r in ratings) / len(ratings)
        assert abs(dist.mean - direct) < 1e-9
