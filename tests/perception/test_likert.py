"""Unit tests for the Likert machinery."""

import pytest

from repro.perception.likert import (
    Likert,
    LikertDistribution,
    latent_to_likert,
)


class TestCoding:
    def test_integer_codes(self):
        assert int(Likert.STRONGLY_DISAGREE) == -2
        assert int(Likert.STRONGLY_AGREE) == 2

    def test_labels(self):
        assert Likert.STRONGLY_DISAGREE.label == "Strongly Disagree"
        assert Likert.NEUTRAL.label == "Neutral"


class TestLatentMapping:
    @pytest.mark.parametrize("latent,expected", [
        (-9.0, Likert.STRONGLY_DISAGREE),
        (-1.51, Likert.STRONGLY_DISAGREE),
        (-1.49, Likert.DISAGREE),
        (-0.51, Likert.DISAGREE),
        (0.0, Likert.NEUTRAL),
        (0.49, Likert.NEUTRAL),
        (0.51, Likert.AGREE),
        (1.49, Likert.AGREE),
        (1.51, Likert.STRONGLY_AGREE),
        (9.0, Likert.STRONGLY_AGREE),
    ])
    def test_thresholds(self, latent, expected):
        assert latent_to_likert(latent) is expected


class TestDistribution:
    def _dist(self, *ratings):
        return LikertDistribution.from_responses(ratings)

    def test_counts(self):
        dist = self._dist(Likert.AGREE, Likert.AGREE, Likert.DISAGREE)
        assert dist.counts == (0, 1, 0, 2, 0)
        assert dist.n == 3

    def test_fractions(self):
        dist = self._dist(Likert.AGREE, Likert.STRONGLY_AGREE,
                          Likert.NEUTRAL, Likert.DISAGREE)
        assert dist.agree_fraction == pytest.approx(0.5)
        assert dist.disagree_fraction == pytest.approx(0.25)
        assert dist.fraction(Likert.NEUTRAL) == pytest.approx(0.25)

    def test_mean(self):
        dist = self._dist(Likert.STRONGLY_AGREE, Likert.STRONGLY_DISAGREE)
        assert dist.mean == pytest.approx(0.0)
        dist = self._dist(Likert.AGREE, Likert.AGREE, Likert.NEUTRAL)
        assert dist.mean == pytest.approx(2 / 3)

    def test_variance(self):
        dist = self._dist(Likert.STRONGLY_AGREE, Likert.STRONGLY_DISAGREE)
        assert dist.variance == pytest.approx(4.0)
        uniform = self._dist(Likert.NEUTRAL, Likert.NEUTRAL)
        assert uniform.variance == pytest.approx(0.0)

    def test_empty_distribution(self):
        dist = LikertDistribution.from_responses([])
        assert dist.n == 0
        assert dist.mean == 0.0
        assert dist.agree_fraction == 0.0

    def test_merged(self):
        a = self._dist(Likert.AGREE)
        b = self._dist(Likert.DISAGREE)
        merged = a.merged(b)
        assert merged.n == 2
        assert merged.mean == pytest.approx(0.0)

    def test_stddev(self):
        dist = self._dist(Likert.STRONGLY_AGREE, Likert.STRONGLY_DISAGREE)
        assert dist.stddev == pytest.approx(2.0)
