"""Unit tests for the respondent population model."""

from repro.perception.respondents import (
    RESPONDENT_COUNT,
    build_population,
    demographics,
)


class TestPopulation:
    def test_default_count_is_305(self):
        assert len(build_population()) == RESPONDENT_COUNT == 305

    def test_deterministic(self):
        assert build_population(seed=1) == build_population(seed=1)

    def test_seed_changes_population(self):
        a = build_population(seed=1)
        b = build_population(seed=2)
        assert a != b

    def test_respondent_ids_sequential(self):
        population = build_population(count=10)
        assert [r.respondent_id for r in population] == list(range(10))

    def test_traits_heterogeneous(self):
        population = build_population()
        annoyances = {round(r.annoyance, 6) for r in population}
        assert len(annoyances) > 250  # real spread, not constants

    def test_noise_scale_positive(self):
        assert all(r.noise_scale > 0 for r in build_population())


class TestDemographics:
    def test_adblock_share_near_half(self):
        demo = demographics(build_population())
        assert abs(demo.adblock_fraction - 0.5) < 0.01

    def test_browser_shares_match_paper(self):
        demo = demographics(build_population())
        assert abs(demo.browser_fractions["chrome"] - 0.61) < 0.02
        assert abs(demo.browser_fractions["firefox"] - 0.28) < 0.02
        assert abs(demo.browser_fractions["safari"] - 0.09) < 0.02
        assert demo.browser_fractions.get("opera", 0) > 0
        assert demo.browser_fractions.get("internet explorer", 0) > 0

    def test_total(self):
        demo = demographics(build_population(count=100))
        assert demo.total == 100
