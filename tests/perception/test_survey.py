"""Tests for the perception survey: structure and paper calibration."""

import pytest

from repro.perception.ads import AdClass, SURVEY_ADS, SURVEY_SITES
from repro.perception.survey import (
    QUESTIONS_PER_RESPONDENT,
    STATEMENTS,
    run_perception_survey,
)


class TestStructure:
    def test_15_ads_8_sites_3_statements(self):
        assert len(SURVEY_ADS) == 15
        assert len(SURVEY_SITES) == 8
        assert len(STATEMENTS) == 3
        assert {ad.site for ad in SURVEY_ADS} == set(SURVEY_SITES)

    def test_72_questions(self):
        assert QUESTIONS_PER_RESPONDENT == 72

    def test_every_class_represented(self):
        classes = {ad.ad_class for ad in SURVEY_ADS}
        assert classes == set(AdClass)

    def test_response_count(self, perception):
        assert len(perception.responses) == 305 * 15 * 3

    def test_deterministic(self):
        a = run_perception_survey(respondents=40, seed=7)
        b = run_perception_survey(respondents=40, seed=7)
        assert a.responses == b.responses

    def test_seed_changes_responses(self):
        a = run_perception_survey(respondents=40, seed=7)
        b = run_perception_survey(respondents=40, seed=8)
        assert a.responses != b.responses


class TestPaperCalibration:
    def test_google2_attention_agreement(self, perception):
        dist = perception.distribution("Google #2", "attention")
        assert abs(dist.agree_fraction - 0.73) < 0.07

    def test_utopia2_attention_agreement(self, perception):
        dist = perception.distribution("Utopia #2", "attention")
        assert abs(dist.agree_fraction - 0.45) < 0.07

    def test_grid_ads_not_distinguished(self, perception):
        for label in ("ViralNova #1", "ViralNova #2"):
            dist = perception.distribution(label, "distinguished")
            assert dist.disagree_fraction > 0.80, label

    def test_obscuring_third_for_named_placements(self, perception):
        for label in ("Reddit #1", "Google #1", "Cracked #1"):
            dist = perception.distribution(label, "obscuring")
            assert 0.25 <= dist.agree_fraction <= 0.45, label

    @pytest.mark.parametrize("ad_class,statement,target", [
        (AdClass.SEM, "attention", 0.217),
        (AdClass.SEM, "distinguished", 0.597),
        (AdClass.SEM, "obscuring", -0.260),
        (AdClass.BANNER, "attention", 0.152),
        (AdClass.BANNER, "distinguished", 0.755),
        (AdClass.BANNER, "obscuring", -0.613),
        (AdClass.CONTENT, "attention", -0.247),
        (AdClass.CONTENT, "distinguished", -0.935),
        (AdClass.CONTENT, "obscuring", 0.125),
    ])
    def test_figure9d_means(self, perception, ad_class, statement, target):
        dist = perception.class_distribution(ad_class, statement)
        assert dist.mean == pytest.approx(target, abs=0.15)

    def test_dissension_everywhere(self, perception):
        """The paper's core finding: broad dissension (high variance)."""
        for ad in SURVEY_ADS:
            for statement in STATEMENTS:
                dist = perception.distribution(ad.label, statement.key)
                assert dist.variance > 0.5, (ad.label, statement.key)

    def test_full_response_range_used(self, perception):
        for statement in STATEMENTS:
            dist = perception.class_distribution(AdClass.BANNER,
                                                 statement.key)
            assert all(count > 0 for count in dist.counts), statement.key

    def test_figure9d_shape(self, perception):
        table = perception.figure9d()
        # Content ads are the least distinguished; banners the most.
        assert table[AdClass.CONTENT]["distinguished"][0] < \
            table[AdClass.SEM]["distinguished"][0]
        assert table[AdClass.BANNER]["distinguished"][0] > 0
        # Only content ads lean toward "obscuring".
        assert table[AdClass.CONTENT]["obscuring"][0] > 0 > \
            table[AdClass.BANNER]["obscuring"][0]


class TestCounterfactuals:
    def test_annoyed_population_agrees_more_on_obscuring(self):
        from repro.perception.respondents import Respondent

        neutral = run_perception_survey(respondents=80, seed=3)
        angry_population = [
            Respondent(respondent_id=i, browser="chrome",
                       uses_adblock=True, annoyance=1.5,
                       discernment=0.0, acquiescence=0.0,
                       noise_scale=0.8)
            for i in range(80)
        ]
        angry = run_perception_survey(seed=3, population=angry_population)
        for ad_class in AdClass:
            assert angry.class_distribution(
                ad_class, "obscuring").mean > neutral.class_distribution(
                ad_class, "obscuring").mean
