"""Unit tests for seed derivation and the process-cache registry."""

import random

import pytest

from repro.parallel.caches import (
    process_cache_stats,
    registered_caches,
    reset_process_caches,
)
from repro.parallel.pool import WorkPool
from repro.parallel.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic_across_calls(self):
        assert derive_seed(7, "example.org", 3) == \
            derive_seed(7, "example.org", 3)

    def test_part_boundaries_matter(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_every_part_contributes(self):
        base = derive_seed(7, "jitter", "example.org", 5)
        assert base != derive_seed(8, "jitter", "example.org", 5)
        assert base != derive_seed(7, "retry", "example.org", 5)
        assert base != derive_seed(7, "jitter", "example.net", 5)
        assert base != derive_seed(7, "jitter", "example.org", 6)

    def test_seed_is_128_bit(self):
        assert 0 <= derive_seed(1, "x") < 2 ** 128

    def test_rng_streams_reproduce(self):
        a = derive_rng(7, "jitter", "example.org", 1)
        b = derive_rng(7, "jitter", "example.org", 1)
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]

    def test_rng_is_plain_random(self):
        assert isinstance(derive_rng(1), random.Random)

    def test_identical_in_forked_worker(self):
        """The whole point: any process derives the same stream."""
        parent = derive_rng(7, "jitter", "example.org", 1).random()
        pool = WorkPool(2)
        if not pool.forks:
            pytest.skip("fork start method unavailable")
        child, = pool.map_shards(
            [[None], []],
            lambda i, shard: derive_rng(7, "jitter", "example.org",
                                        1).random())[:1]
        assert child == parent


def _url_cache():
    from repro.web.url import public_suffix
    return public_suffix


class TestProcessCaches:
    def test_hot_path_caches_are_registered(self):
        registered = {f"{c.__module__}.{c.__qualname__}"
                      for c in registered_caches()}
        for expected in ("repro.web.url.public_suffix",
                         "repro.web.url.registered_domain",
                         "repro.filters.pattern.compile_pattern",
                         "repro.filters.pattern.keyword_candidates"):
            assert expected in registered

    def test_url_tokeniser_is_not_a_process_cache(self):
        # The compiled filter index replaced the lru_cache-backed URL
        # tokeniser: nothing left to re-warm (or clear) after fork.
        import repro.filters.index  # ensure the module has registered
        registered = {f"{c.__module__}.{c.__qualname__}"
                      for c in registered_caches()}
        assert "repro.filters.index._url_tokens" not in registered
        assert not hasattr(repro.filters.index._url_tokens, "cache_clear")

    def test_reset_clears_registered_caches(self):
        cache = _url_cache()
        cache("ads.example.co.uk")
        assert cache.cache_info().currsize > 0
        reset_process_caches()
        assert cache.cache_info().currsize == 0

    def test_stats_reflect_this_process(self):
        cache = _url_cache()
        reset_process_caches()
        cache("ads.example.co.uk")
        cache("ads.example.co.uk")
        stats = process_cache_stats()["repro.web.url.public_suffix"]
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1
        assert stats["currsize"] >= 1
        assert stats["maxsize"] == 65536

    def test_forked_worker_starts_cold(self):
        cache = _url_cache()
        cache("warm.example.co.uk")  # warm the parent cache
        assert cache.cache_info().currsize > 0
        pool = WorkPool(2)
        if not pool.forks:
            pytest.skip("fork start method unavailable")

        def sizes(i, shard):
            before = _url_cache().cache_info().currsize
            _url_cache()("child-only.example.co.uk")
            return before, _url_cache().cache_info().currsize

        (before, after), _ = pool.map_shards([[None], []], sizes)
        assert before == 0        # fork guard cleared the inherited cache
        assert after > 0          # and the child cache works normally
        assert cache.cache_info().currsize > 0  # parent cache untouched
