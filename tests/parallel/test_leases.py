"""Unit tests for lease generation and the dispatcher's lease ledger."""

import pytest

from repro.parallel.leases import Lease, LeaseLedger, generate_leases


class TestGenerateLeases:
    def test_chunks_preserve_order(self):
        leases = generate_leases([3, 1, 4, 1, 5], 2)
        assert [lease.indices for lease in leases] == \
            [(3, 1), (4, 1), (5,)]
        assert [lease.lease_id for lease in leases] == [0, 1, 2]

    def test_exact_multiple_has_no_runt_lease(self):
        leases = generate_leases(list(range(6)), 3)
        assert [len(lease) for lease in leases] == [3, 3]

    def test_lease_size_one(self):
        leases = generate_leases([7, 8], 1)
        assert [lease.indices for lease in leases] == [(7,), (8,)]

    def test_empty_input_yields_no_leases(self):
        assert generate_leases([], 3) == []

    def test_empty_input_wins_over_invalid_lease_size(self):
        assert generate_leases([], 0) == []

    def test_invalid_lease_size_rejected(self):
        with pytest.raises(ValueError):
            generate_leases([1], 0)

    def test_lease_is_immutable(self):
        lease = Lease(0, (1, 2))
        with pytest.raises(AttributeError):
            lease.indices = (3,)


class TestLeaseLedger:
    def test_grant_complete_finish_lifecycle(self):
        ledger = LeaseLedger()
        lease = ledger.grant(worker=0, indices=(0, 1, 2))
        assert ledger.outstanding == 1
        assert ledger.in_flight == 3
        for index in lease.indices:
            ledger.complete(lease.lease_id, index)
        assert ledger.in_flight == 0
        ledger.finish(lease.lease_id)
        assert ledger.outstanding == 0

    def test_lease_ids_are_sequential(self):
        ledger = LeaseLedger()
        first = ledger.grant(worker=0, indices=(0,))
        second = ledger.grant(worker=1, indices=(1,))
        assert (first.lease_id, second.lease_id) == (0, 1)

    def test_empty_grant_rejected(self):
        with pytest.raises(ValueError):
            LeaseLedger().grant(worker=0, indices=())

    def test_revoke_returns_incomplete_lowest_first(self):
        ledger = LeaseLedger()
        lease = ledger.grant(worker=0, indices=(4, 5, 6, 7))
        ledger.complete(lease.lease_id, 5)
        assert ledger.revoke(lease.lease_id) == (4, 6, 7)
        assert ledger.outstanding == 0

    def test_revoke_unknown_lease_is_harmless(self):
        assert LeaseLedger().revoke(99) == ()

    def test_complete_after_revoke_is_ignored(self):
        """A dead worker's last buffered message must not corrupt the
        ledger after its lease was revoked and requeued."""
        ledger = LeaseLedger()
        lease = ledger.grant(worker=0, indices=(0, 1))
        ledger.revoke(lease.lease_id)
        ledger.complete(lease.lease_id, 0)  # late echo; no effect
        assert ledger.outstanding == 0
        assert ledger.in_flight == 0

    def test_finish_with_incomplete_units_rejected(self):
        ledger = LeaseLedger()
        lease = ledger.grant(worker=0, indices=(0, 1))
        ledger.complete(lease.lease_id, 0)
        with pytest.raises(ValueError, match="incomplete"):
            ledger.finish(lease.lease_id)

    def test_leases_of_tracks_per_worker_holdings(self):
        ledger = LeaseLedger()
        a = ledger.grant(worker=0, indices=(0,))
        b = ledger.grant(worker=1, indices=(1,))
        c = ledger.grant(worker=0, indices=(2,))
        assert ledger.leases_of(0) == (a.lease_id, c.lease_id)
        assert ledger.leases_of(1) == (b.lease_id,)
        ledger.revoke(a.lease_id)
        assert ledger.leases_of(0) == (c.lease_id,)
