"""Worker supervision and fault recovery in the work-stealing scheduler.

The contract under test: a deterministic kill schedule (worker exits,
wedges, poison units) changes *nothing* about the survey's results —
dead workers forfeit their lease, the units are stolen by survivors or
a respawned replacement, and only a unit that kills two workers is
retired, as an explicit quarantined outcome.
"""

import json
import multiprocessing
import os
import random

import pytest

from repro.measurement.survey import (build_engines, build_samples,
                                      make_profile_factory)
from repro.state import (Checkpoint, CrashInjector, SimulatedCrash,
                         crashing, lease_log_path, read_lease_strikes)
from repro.parallel.scheduler import (POISONED_ERROR_CLASS, SchedulerError,
                                      StealStats, run_stealing_survey,
                                      simulate_steal_makespan)
from repro.parallel.supervisor import (POISON_EXIT_CODE, Supervisor,
                                       WorkerCrashInjector, WorkerHandle)
from repro.web.crawler import Crawler
from repro.web.crawlstate import snapshot_outcome
from repro.web.faults import FaultInjector, FaultPlan
from repro.web.resilience import RetryPolicy

_FORKS = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not _FORKS,
                                reason="fork start method unavailable")


class TestWorkerCrashInjector:
    def test_kill_after_fires_on_first_incarnation_only(self):
        injector = WorkerCrashInjector(kill_after={1: 2})
        # Initial spawns are dealt in slot order, so slot 1's first
        # incarnation is incarnation 1 — that, and only that, dies.
        assert injector.verdict(slot=1, incarnation=1, units_done=2,
                                index=9) == "exit"
        assert injector.verdict(slot=1, incarnation=3, units_done=2,
                                index=9) is None
        assert injector.verdict(slot=0, incarnation=0, units_done=2,
                                index=9) is None

    def test_kill_after_counts_completed_units(self):
        injector = WorkerCrashInjector(kill_after={0: 3})
        assert injector.verdict(slot=0, incarnation=0, units_done=2,
                                index=4) is None
        assert injector.verdict(slot=0, incarnation=0, units_done=3,
                                index=5) == "exit"

    def test_wedge_slots_wedge_instead_of_exiting(self):
        injector = WorkerCrashInjector(kill_after={0: 1},
                                       wedge_slots=frozenset({0}))
        assert injector.verdict(slot=0, incarnation=0, units_done=1,
                                index=2) == "wedge"

    def test_poison_units_kill_every_incarnation(self):
        injector = WorkerCrashInjector(poison_units=frozenset({5}))
        for incarnation in (0, 1, 7):
            assert injector.verdict(slot=0, incarnation=incarnation,
                                    units_done=0, index=5) == "exit"
        assert injector.verdict(slot=0, incarnation=0, units_done=0,
                                index=6) is None

    def test_none_verdict_executes_as_noop(self):
        WorkerCrashInjector().execute(None)  # must simply return

    def test_default_exit_code_is_distinguishable(self):
        assert WorkerCrashInjector().exit_code == POISON_EXIT_CODE


class TestSupervisorBookkeeping:
    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            Supervisor(lambda *a: None, workers=0, heartbeat_timeout=1.0,
                       max_restarts=0)

    def test_respawn_exhausts_budget(self):
        supervisor = Supervisor(lambda *a: None, workers=2,
                                heartbeat_timeout=1.0, max_restarts=0)
        assert supervisor.respawn(0) is None
        assert supervisor.restarts_used == 0

    def test_heartbeat_lag_computed_from_send_stamp(self):
        clock = iter([0.0, 10.3, 20.0])
        supervisor = Supervisor(lambda *a: None, workers=1,
                                heartbeat_timeout=5.0, max_restarts=0,
                                clock=lambda: next(clock))
        handle = WorkerHandle(slot=0, incarnation=0, proc=None,
                              conn=None, last_seen=next(clock))
        # Receive at t=10.3 of a message stamped t=10.0: 0.3s of lag.
        lag = supervisor.note_heartbeat(handle, sent_s=10.0)
        assert lag == pytest.approx(0.3)
        assert handle.last_lag_s == pytest.approx(0.3)
        assert handle.last_seen == 10.3
        assert supervisor.max_lag_s == pytest.approx(0.3)
        # A smaller lag updates last_lag_s but not the maximum.
        lag = supervisor.note_heartbeat(handle, sent_s=19.9)
        assert lag == pytest.approx(0.1)
        assert supervisor.max_lag_s == pytest.approx(0.3)

    def test_heartbeat_lag_clamped_for_future_stamps(self):
        """A skewed send stamp must never extend the deadline."""
        clock = iter([0.0, 5.0])
        supervisor = Supervisor(lambda *a: None, workers=1,
                                heartbeat_timeout=5.0, max_restarts=0,
                                clock=lambda: next(clock))
        handle = WorkerHandle(slot=0, incarnation=0, proc=None,
                              conn=None, last_seen=next(clock))
        assert supervisor.note_heartbeat(handle, sent_s=99.0) == 0.0
        assert handle.last_lag_s == 0.0
        assert handle.last_seen == 5.0
        assert supervisor.max_lag_s == 0.0

    def test_idle_workers_never_time_out(self):
        clock = iter([0.0, 100.0, 200.0])
        supervisor = Supervisor(lambda *a: None, workers=1,
                                heartbeat_timeout=0.5, max_restarts=0,
                                clock=lambda: next(clock))

        class _FakeProc:
            def is_alive(self):
                return True

        handle = type("H", (), {})()
        handle.proc = _FakeProc()
        handle.lease = None  # idle: owes us nothing
        handle.last_seen = next(clock)
        supervisor.handles[0] = handle
        assert supervisor.dead_workers() == []


# -- scheduler-level fault injection ----------------------------------------

def _snap(surveyed) -> str:
    return json.dumps(
        {group: [snapshot_outcome(outcome) for outcome in outcomes]
         for group, outcomes in surveyed.items()}, sort_keys=True)


@pytest.fixture(scope="module")
def steal_setup(history):
    """A 35-unit survey plus a crawler factory closing over a prebuilt
    engine (workers inherit it by fork — building EasyList per worker
    would blow the wedge test's short heartbeat on healthy workers)."""
    groups = build_samples(history.population.ranking,
                           top_n=20, stratum_size=5)
    engine, _easylist, _whitelist = build_engines(history)
    profiles = make_profile_factory(history)

    def crawler_factory() -> Crawler:
        rng = random.Random(7)
        return Crawler(engine, profile_factory=profiles,
                       retry_policy=RetryPolicy(max_attempts=3),
                       fault_injector=FaultInjector(
                           FaultPlan.uniform(0.3, rng=rng)),
                       rng=rng)

    return groups, crawler_factory


@pytest.fixture(scope="module")
def reference(steal_setup):
    """The one-worker (inline) result every kill schedule must match."""
    groups, factory = steal_setup
    return _snap(run_stealing_survey(groups, crawler_factory=factory,
                                     workers=1, jitter_seed=7))


def _run(steal_setup, **kwargs):
    groups, factory = steal_setup
    stats = StealStats()
    surveyed = run_stealing_survey(groups, crawler_factory=factory,
                                   jitter_seed=7, stats=stats, **kwargs)
    return surveyed, stats


@needs_fork
class TestCrashRecovery:
    def test_clean_run_matches_inline(self, steal_setup, reference):
        surveyed, stats = _run(steal_setup, workers=3)
        assert _snap(surveyed) == reference
        assert stats.worker_deaths == 0
        assert stats.units_crawled == stats.units_total == 35

    def test_kill_at_unit_n_is_invisible_in_results(self, steal_setup,
                                                    reference):
        injector = WorkerCrashInjector(kill_after={0: 2})
        surveyed, stats = _run(steal_setup, workers=3,
                               crash_injector=injector)
        assert _snap(surveyed) == reference
        assert stats.worker_deaths == 1
        assert stats.worker_restarts == 1
        assert stats.units_reassigned >= 1
        assert stats.quarantined == []

    def test_killing_every_worker_once_still_identical(self, steal_setup,
                                                       reference):
        injector = WorkerCrashInjector(kill_after={0: 1, 1: 3})
        surveyed, stats = _run(steal_setup, workers=2,
                               crash_injector=injector)
        assert _snap(surveyed) == reference
        assert stats.worker_deaths == 2
        assert stats.worker_restarts == 2

    def test_wedged_worker_caught_by_heartbeat(self, steal_setup,
                                               reference):
        injector = WorkerCrashInjector(kill_after={0: 2},
                                       wedge_slots=frozenset({0}))
        surveyed, stats = _run(steal_setup, workers=3,
                               heartbeat_timeout=1.0,
                               crash_injector=injector)
        assert _snap(surveyed) == reference
        assert stats.heartbeat_timeouts == 1
        assert stats.worker_deaths == 1

    def test_poison_unit_quarantined_after_two_kills(self, steal_setup,
                                                     reference):
        injector = WorkerCrashInjector(poison_units=frozenset({5}))
        surveyed, stats = _run(steal_setup, workers=2,
                               crash_injector=injector)
        assert stats.quarantined == [5]
        assert stats.worker_deaths == 2  # exactly poison_threshold

        flat = [snapshot_outcome(o)
                for _group, outcomes in sorted(surveyed.items())
                for o in outcomes]
        expected = json.loads(reference)
        expected_flat = [snap
                         for _group, outcomes in sorted(expected.items())
                         for snap in outcomes]
        differing = [(ours, theirs) for ours, theirs
                     in zip(flat, expected_flat) if ours != theirs]
        # Only the poisoned unit differs, and it is an explicit failed
        # outcome — never an exception, never a silent gap.
        assert len(differing) == 1
        poisoned, _ = differing[0]
        assert poisoned["status"] == "failed"
        assert poisoned["error_class"] == POISONED_ERROR_CLASS

    def test_restart_budget_exhaustion_raises(self, steal_setup):
        injector = WorkerCrashInjector(kill_after={0: 0, 1: 0})
        with pytest.raises(SchedulerError, match="restart budget"):
            _run(steal_setup, workers=2, max_worker_restarts=0,
                 crash_injector=injector)

    def test_backpressure_bound_does_not_change_results(self, steal_setup,
                                                        reference):
        surveyed, stats = _run(steal_setup, workers=2, max_backlog=1)
        assert _snap(surveyed) == reference
        assert stats.units_crawled == stats.units_total

    def test_injector_is_inert_on_the_inline_path(self, steal_setup,
                                                  reference):
        injector = WorkerCrashInjector(kill_after={0: 0},
                                       poison_units=frozenset({0}))
        surveyed, stats = _run(steal_setup, workers=1,
                               crash_injector=injector)
        assert _snap(surveyed) == reference
        assert stats.worker_deaths == 0


@needs_fork
class TestStrikePersistence:
    def test_poison_strikes_survive_parent_crash(self, steal_setup,
                                                 reference, tmp_path):
        """A unit condemned before the parent died stays condemned: the
        synced lease log replays its strikes on resume, so the poison
        unit never gets to kill two *fresh* workers per attempt."""
        groups, factory = steal_setup
        path = str(tmp_path / "steal.ckpt")
        injector = WorkerCrashInjector(poison_units=frozenset({6}))
        checkpoint = Checkpoint.start(path)
        try:
            # In-order flush stalls at the poisoned index until the
            # quarantine verdict, so a late crash step lands after both
            # strikes are in the (synced) lease log.
            with crashing(CrashInjector(at_step=30)):
                with pytest.raises(SimulatedCrash):
                    run_stealing_survey(groups, crawler_factory=factory,
                                        workers=2, jitter_seed=7,
                                        checkpoint=checkpoint,
                                        crash_injector=injector)
        finally:
            checkpoint.close()
        strikes, quarantined = read_lease_strikes(path, "survey")
        assert 6 in quarantined or strikes.get(6, 0) >= 2

        resumed = Checkpoint.resume(path)
        stats = StealStats()
        try:
            surveyed = run_stealing_survey(groups, crawler_factory=factory,
                                           workers=2, jitter_seed=7,
                                           checkpoint=resumed, stats=stats)
        finally:
            resumed.close()
        # No injector this time: only the replayed verdict can condemn,
        # either as a restored checkpoint entry (the crash happened
        # after the quarantined outcome flushed) or as a re-quarantine
        # seeded from the lease log's strikes.  Never a fresh death.
        assert stats.worker_deaths == 0
        assert stats.quarantined in ([], [6])
        assert not os.path.exists(lease_log_path(path))

        flat = [snapshot_outcome(o)
                for _group, outcomes in sorted(surveyed.items())
                for o in outcomes]
        expected_flat = [snap for _group, outcomes
                         in sorted(json.loads(reference).items())
                         for snap in outcomes]
        differing = [ours for ours, theirs in zip(flat, expected_flat)
                     if ours != theirs]
        assert len(differing) == 1
        assert differing[0]["error_class"] == POISONED_ERROR_CLASS


class TestMakespanModel:
    def test_perfect_balance(self):
        assert simulate_steal_makespan([1.0] * 8, workers=4,
                                       lease_size=1) == 2.0

    def test_stealing_absorbs_a_straggler(self):
        # One 4s unit plus twelve 1s units on 4 workers: the straggler's
        # worker keeps it busy while the others steal the rest.
        latencies = [4.0] + [1.0] * 12
        assert simulate_steal_makespan(latencies, workers=4,
                                       lease_size=1) == 4.0

    def test_coarse_leases_cost_balance(self):
        latencies = [1.0] * 8
        fine = simulate_steal_makespan(latencies, workers=4, lease_size=1)
        coarse = simulate_steal_makespan(latencies, workers=4,
                                         lease_size=8)
        assert fine == 2.0 and coarse == 8.0

    def test_kill_requeues_unfinished_units(self):
        assert simulate_steal_makespan([1.0] * 8, workers=4, lease_size=1,
                                       kill=(0, 0.5)) == 3.0

    def test_empty_input(self):
        assert simulate_steal_makespan([], workers=4, lease_size=2) == 0.0

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            simulate_steal_makespan([1.0], workers=0, lease_size=1)
