"""Unit tests for the shared-nothing worker pool."""

import os

import pytest

from repro.parallel.pool import WorkerError, WorkPool, shard_round_robin


class TestShardRoundRobin:
    def test_deals_in_rotation(self):
        assert shard_round_robin([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_single_shard_keeps_order(self):
        assert shard_round_robin(list("abc"), 1) == [["a", "b", "c"]]

    def test_more_shards_than_items_yields_empty_shards(self):
        assert shard_round_robin([1], 3) == [[1], [], []]

    def test_empty_items_yield_no_shards(self):
        assert shard_round_robin([], 2) == []

    def test_empty_items_win_over_invalid_shard_count(self):
        assert shard_round_robin([], 0) == []

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_round_robin([1], 0)

    def test_rotation_covers_every_item_exactly_once(self):
        items = list(range(17))
        shards = shard_round_robin(items, 4)
        assert sorted(x for shard in shards for x in shard) == items


class TestWorkPool:
    def test_single_worker_runs_inline(self):
        pool = WorkPool(1)
        pid = os.getpid()
        results = pool.map_shards([[1, 2]], lambda i, shard:
                                  (os.getpid(), i, sum(shard)))
        assert results == [(pid, 0, 3)]

    def test_results_keep_shard_order(self):
        pool = WorkPool(4)
        shards = shard_round_robin(list(range(8)), 4)
        results = pool.map_shards(shards, lambda i, shard: (i, list(shard)))
        assert [r[0] for r in results] == [0, 1, 2, 3]
        assert [r[1] for r in results] == shards

    @pytest.mark.skipif(not WorkPool(2).forks,
                        reason="fork start method unavailable")
    def test_multi_worker_forks_child_processes(self):
        pool = WorkPool(2)
        pids = pool.map_shards([[1], [2]], lambda i, shard: os.getpid())
        assert all(pid != os.getpid() for pid in pids)
        assert len(set(pids)) == 2

    def test_worker_exception_raises_worker_error(self):
        def boom(i, shard):
            raise RuntimeError(f"shard {i} failed")

        pool = WorkPool(2)
        with pytest.raises(WorkerError) as excinfo:
            pool.map_shards([[1], [2]], boom)
        assert "failed" in str(excinfo.value)

    def test_inline_exception_raises_worker_error_too(self):
        def boom(i, shard):
            raise RuntimeError("inline failure")

        with pytest.raises(WorkerError):
            WorkPool(1).map_shards([[1]], boom)

    def test_more_shards_than_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkPool(2).map_shards([[1], [2], [3]], lambda i, s: None)

    def test_no_shards_is_a_noop(self):
        assert WorkPool(4).map_shards([], lambda i, s: None) == []

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            WorkPool(0)


class TestWorkerErrorDiagnostics:
    def test_message_carries_exit_code_and_progress(self):
        err = WorkerError(1, "boom", exit_code=3, completed_units=7)
        assert "exit code 3" in str(err)
        assert "7 unit(s) completed" in str(err)
        assert err.exit_code == 3 and err.signal is None
        assert err.completed_units == 7

    def test_message_carries_signal(self):
        err = WorkerError(0, "boom", signal=9)
        assert "killed by signal 9" in str(err)
        assert err.signal == 9 and err.exit_code is None

    def test_unknown_context_adds_no_suffix(self):
        err = WorkerError(2, "boom")
        assert str(err).startswith("worker for shard 2 failed:\n")

    @pytest.mark.skipif(not WorkPool(2).forks,
                        reason="fork start method unavailable")
    def test_forked_death_by_exit_reports_exit_code(self):
        def die(i, shard):
            if i == 1:
                os._exit(42)
            return i

        with pytest.raises(WorkerError) as excinfo:
            WorkPool(2).map_shards([[1], [2]], die)
        assert excinfo.value.shard_index == 1
        assert excinfo.value.exit_code == 42
        assert excinfo.value.signal is None

    @pytest.mark.skipif(not WorkPool(2).forks,
                        reason="fork start method unavailable")
    def test_forked_exception_reports_completed_units(self):
        def partial(i, shard):
            exc = RuntimeError("late failure")
            exc.completed_units = len(shard) - 1
            raise exc

        with pytest.raises(WorkerError) as excinfo:
            WorkPool(2).map_shards([[1, 2, 3], [4]], partial)
        assert excinfo.value.completed_units in (0, 2)

    def test_inline_exception_reports_completed_units(self):
        def partial(i, shard):
            exc = RuntimeError("late failure")
            exc.completed_units = 5
            raise exc

        with pytest.raises(WorkerError) as excinfo:
            WorkPool(1).map_shards([[1]], partial)
        assert excinfo.value.completed_units == 5
