"""Rotation and corruption tests for the streaming segment exporter."""

import json

import pytest

from repro.obs.export import (
    DEFAULT_SEGMENT_BYTES,
    RotatingJsonlExporter,
    list_segments,
    read_rotated_jsonl,
    segment_path,
)
from repro.state.atomic import ArtifactError, read_jsonl


def write_stream(path, count, *, run_id=None, max_segment_bytes=None):
    kwargs = {"run_id": run_id}
    if max_segment_bytes is not None:
        kwargs["max_segment_bytes"] = max_segment_bytes
    exporter = RotatingJsonlExporter(str(path), **kwargs)
    for n in range(count):
        exporter.write({"type": "sample", "tick": n + 1,
                        "metrics": {"demo.units": n + 1}})
    return exporter


class TestSegmentNaming:
    def test_segment_path_is_zero_padded(self):
        assert segment_path("ts.jsonl", 0) == "ts.jsonl.000"
        assert segment_path("ts.jsonl", 12) == "ts.jsonl.012"

    def test_list_segments_orders_by_index(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        for index in (2, 0, 1):
            (tmp_path / f"ts.jsonl.{index:03d}").write_text("{}\n")
        assert [p.rsplit(".", 1)[-1] for p in list_segments(str(base))] \
            == ["000", "001", "002"]

    def test_list_segments_excludes_diag_sidecar(self, tmp_path):
        (tmp_path / "ts.jsonl.000").write_text("{}\n")
        (tmp_path / "ts.jsonl.diag.000").write_text("{}\n")
        segments = list_segments(str(tmp_path / "ts.jsonl"))
        assert [s.endswith("ts.jsonl.000") for s in segments] == [True]

    def test_list_segments_empty_when_missing(self, tmp_path):
        assert list_segments(str(tmp_path / "nope" / "ts.jsonl")) == []


class TestRotation:
    def test_rotates_when_segment_fills(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        exporter = write_stream(base, 50, max_segment_bytes=256)
        exporter.close()
        segments = list_segments(str(base))
        assert len(segments) > 1
        assert exporter.segments_written == len(segments)
        records = read_rotated_jsonl(str(base), strict=True)
        assert [r["tick"] for r in records] == list(range(1, 51))

    def test_each_segment_opens_with_run_header(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        write_stream(base, 50, run_id="rid0", max_segment_bytes=256).close()
        for index, segment in enumerate(list_segments(str(base))):
            header = read_jsonl(segment)[0]
            assert header["type"] == "run"
            assert header["run_id"] == "rid0"
            assert header["segment"] == index

    def test_sealed_segments_verify_under_read_jsonl(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        write_stream(base, 10).close()
        records = read_jsonl(segment_path(str(base), 0))
        assert [r["tick"] for r in records] == list(range(1, 11))

    def test_identical_write_sequences_are_byte_identical(self, tmp_path):
        def run(name):
            base = tmp_path / name
            write_stream(base, 30, run_id="r",
                         max_segment_bytes=512).close()
            return b"".join(
                open(s, "rb").read() for s in list_segments(str(base)))

        assert run("a.jsonl") == run("b.jsonl")

    def test_default_segment_size_is_sane(self):
        assert DEFAULT_SEGMENT_BYTES >= 64 * 1024

    def test_rejects_nonpositive_segment_size(self, tmp_path):
        with pytest.raises(ValueError, match="max_segment_bytes"):
            RotatingJsonlExporter(str(tmp_path / "x"), max_segment_bytes=0)


class TestClose:
    def test_close_is_idempotent_and_stops_writes(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        exporter = write_stream(base, 3)
        exporter.close()
        exporter.close()
        exporter.write({"type": "sample", "tick": 99})
        records = read_rotated_jsonl(str(base), strict=True)
        assert [r["tick"] for r in records] == [1, 2, 3]

    def test_close_without_writes_seals_header_only_segment(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        exporter = RotatingJsonlExporter(str(base), run_id="rid")
        exporter.close()
        records = read_rotated_jsonl(str(base), strict=True)
        assert [r["type"] for r in records] == ["run"]


class TestTornTailAndCorruption:
    def test_torn_final_line_is_dropped(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        write_stream(base, 3)                     # never closed
        segment = segment_path(str(base), 0)
        with open(segment, "ab") as handle:
            handle.write(b'{"type": "sample", "tick": 4, "met')
        records = read_rotated_jsonl(str(base))
        assert [r["tick"] for r in records] == [1, 2, 3]

    def test_unsealed_but_complete_lines_all_survive(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        write_stream(base, 3)                     # killed before close()
        records = read_rotated_jsonl(str(base))
        assert [r["tick"] for r in records] == [1, 2, 3]

    def test_strict_raises_on_unsealed_final_segment(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        write_stream(base, 3)                     # no footer
        with pytest.raises(ArtifactError):
            read_rotated_jsonl(str(base), strict=True)

    def test_midfile_corruption_raises_even_tolerant(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        write_stream(base, 5)                     # unsealed
        segment = segment_path(str(base), 0)
        lines = open(segment, "rb").read().splitlines(keepends=True)
        lines[2] = b"NOT JSON\n"
        open(segment, "wb").write(b"".join(lines))
        with pytest.raises(ArtifactError, match="line 3"):
            read_rotated_jsonl(str(base))

    def test_corrupt_sealed_segment_raises(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        write_stream(base, 50, max_segment_bytes=256).close()
        first = list_segments(str(base))[0]
        data = bytearray(open(first, "rb").read())
        data[10] ^= 0x01
        open(first, "wb").write(bytes(data))
        with pytest.raises(ArtifactError):
            read_rotated_jsonl(str(base))

    def test_tampered_footer_detected_on_final_segment(self, tmp_path):
        base = tmp_path / "ts.jsonl"
        write_stream(base, 3).close()
        segment = segment_path(str(base), 0)
        lines = open(segment, "rb").read().splitlines(keepends=True)
        footer = json.loads(lines[-1])
        footer["crc32"] = "00000000"
        lines[-1] = (json.dumps(footer) + "\n").encode()
        open(segment, "wb").write(b"".join(lines))
        with pytest.raises(ArtifactError):
            read_rotated_jsonl(str(base))

    def test_no_segments_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="no time-series"):
            read_rotated_jsonl(str(tmp_path / "ts.jsonl"))
