"""Unit tests for the time-series sampler, progress tracker, and ticker."""

import threading

import pytest

from repro.obs import (
    NULL_TIMESERIES,
    OBS,
    InMemoryTimeSeries,
    MetricsRegistry,
    ProgressTracker,
    TimeSeriesSampler,
    WallClockTicker,
    observe,
)


def make_sampler(**kwargs):
    sink = InMemoryTimeSeries()
    registry = kwargs.pop("registry", MetricsRegistry())
    sampler = TimeSeriesSampler(sink, registry=registry, **kwargs)
    return sampler, sink, registry


class TestAdvance:
    def test_emits_one_sample_per_tick_crossed(self):
        sampler, sink, registry = make_sampler(interval_s=1.0)
        registry.counter("demo.units").inc()
        assert sampler.advance(0.4) == 0
        assert sampler.advance(0.4) == 0
        assert sampler.advance(0.4) == 1          # crosses 1.0
        assert sampler.advance(2.0) == 2          # crosses 2.0 and 3.0
        assert [r["tick"] for r in sink.records] == [1, 2, 3]
        assert [r["t_s"] for r in sink.records] == [1.0, 2.0, 3.0]
        assert sink.records[0]["metrics"] == {"demo.units": 1}

    def test_float_accumulation_crosses_exact_boundary(self):
        """0.1 x 10 must cross the 1.0 tick despite float error."""
        sampler, sink, _ = make_sampler(interval_s=1.0)
        emitted = sum(sampler.advance(0.1) for _ in range(10))
        assert emitted == 1
        assert sink.records[0]["t_s"] == 1.0

    def test_snapshot_reflects_registry_at_tick_time(self):
        sampler, sink, registry = make_sampler(interval_s=1.0)
        registry.counter("n").inc()
        sampler.advance(1.0)
        registry.counter("n").inc()
        sampler.advance(1.0)
        assert [r["metrics"]["n"] for r in sink.records] == [1, 2]

    def test_zero_and_negative_deltas_are_noops(self):
        sampler, sink, _ = make_sampler()
        assert sampler.advance(0.0) == 0
        assert sampler.advance(-1.0) == 0
        assert sink.records == []

    def test_closed_sampler_stops_emitting(self):
        sampler, sink, _ = make_sampler()
        sampler.close()
        assert sampler.advance(5.0) == 0
        assert sink.closed
        sampler.close()                           # idempotent

    def test_reads_current_obs_registry_when_unpinned(self):
        sink = InMemoryTimeSeries()
        sampler = TimeSeriesSampler(sink)         # registry=None
        with observe() as (registry, _):
            registry.counter("live").inc(7)
            sampler.advance(1.0)
        assert sink.records[0]["metrics"] == {"live": 7}

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval_s"):
            TimeSeriesSampler(InMemoryTimeSeries(), interval_s=0.0)


class TestWallSampling:
    def test_wall_samples_stamp_elapsed_seconds(self):
        ticks = iter([10.0, 12.5])
        sampler, sink, _ = make_sampler(clock=lambda: next(ticks))
        sampler.sample_wall()
        sampler.sample_wall()
        assert [r["t_s"] for r in sink.records] == [0.0, 2.5]
        assert [r["tick"] for r in sink.records] == [1, 2]


class TestDiagnosticsSidecar:
    def test_writes_diagnostics_to_sidecar_only(self):
        side = InMemoryTimeSeries()
        ticks = iter([0.0, 1.0])
        sampler, sink, _ = make_sampler(diagnostics_exporter=side,
                                        clock=lambda: next(ticks))
        with observe(diagnostics=MetricsRegistry()):
            OBS.diagnostics.gauge("parallel.steal.backlog").set(3)
            sampler.sample_diagnostics()
        assert sink.records == []
        assert side.records[0]["metrics"] == {
            "parallel.steal.backlog": 3}

    def test_rate_limited_on_wall_clock(self):
        side = InMemoryTimeSeries()
        ticks = iter([0.0, 0.1, 0.6])
        sampler, _, _ = make_sampler(diagnostics_exporter=side,
                                     diagnostics_min_wall_s=0.25,
                                     clock=lambda: next(ticks))
        with observe(diagnostics=MetricsRegistry()):
            OBS.diagnostics.gauge("g").set(1)
            sampler.sample_diagnostics()          # t=0.0: emits
            sampler.sample_diagnostics()          # t=0.1: suppressed
            sampler.sample_diagnostics()          # t=0.6: emits
        assert len(side.records) == 2

    def test_noop_without_sidecar_or_diagnostics(self):
        sampler, sink, _ = make_sampler()
        sampler.sample_diagnostics()              # no sidecar exporter
        assert sink.records == []


class TestProgressTracker:
    def test_publishes_gauges_and_drives_ticks(self):
        sink = InMemoryTimeSeries()
        sampler = TimeSeriesSampler(sink, interval_s=1.0)
        with observe(timeseries=sampler) as (registry, _):
            tracker = ProgressTracker("survey/demo", total=4)
            tracker.step(600.0)
            tracker.step(600.0)                   # 1.2s: crosses 1.0
            flat = registry.flat()
        assert flat["run.progress.units_total{stage=survey/demo}"] == 4
        assert flat["run.progress.units_done{stage=survey/demo}"] == 2
        assert flat["run.progress.elapsed_s{stage=survey/demo}"] == 1.2
        assert flat["run.progress.eta_s{stage=survey/demo}"] == 1.2
        assert len(sink.records) == 1

    def test_resumed_run_starts_with_done_offset(self):
        with observe() as (registry, _):
            ProgressTracker("s", total=10, done=7)
            flat = registry.flat()
        assert flat["run.progress.units_done{stage=s}"] == 7
        assert flat["run.progress.eta_s{stage=s}"] == 0.0

    def test_silent_without_registry_or_sampler(self):
        tracker = ProgressTracker("s", total=2)
        tracker.step(100.0)                       # no observe(): no-op
        assert OBS.timeseries is NULL_TIMESERIES


class TestWallClockTicker:
    def test_ticks_until_stopped(self):
        emitted = threading.Event()
        sink = InMemoryTimeSeries()

        class Signalling(TimeSeriesSampler):
            def sample_wall(self):
                super().sample_wall()
                emitted.set()

        sampler = Signalling(sink, registry=MetricsRegistry())
        ticker = WallClockTicker(sampler, interval_s=0.01)
        ticker.start()
        assert emitted.wait(timeout=5.0)
        ticker.stop()
        count = len(sink.records)
        assert count >= 1
        ticker.stop()                             # idempotent

    def test_start_twice_is_single_thread(self):
        sampler, _, _ = make_sampler()
        ticker = WallClockTicker(sampler, interval_s=60.0)
        ticker.start()
        thread = ticker._thread
        ticker.start()
        assert ticker._thread is thread
        ticker.stop()


class TestNullTimeSeries:
    def test_null_is_inert(self):
        assert NULL_TIMESERIES.enabled is False
        assert NULL_TIMESERIES.advance(100.0) == 0
        NULL_TIMESERIES.sample_wall()
        NULL_TIMESERIES.sample_diagnostics()
        NULL_TIMESERIES.close()
