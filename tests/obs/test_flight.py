"""Unit tests for the flight recorder ring and its dump artifact."""

import pytest

from repro.obs import (
    NULL_FLIGHT,
    DEFAULT_FLIGHT_CAPACITY,
    FlightRecorder,
    Tracer,
    observe,
)
from repro.obs.analyze import load_flight
from repro.state.atomic import ArtifactError, read_jsonl


def make_recorder(capacity=4, **kwargs):
    ticks = iter(x * 0.5 for x in range(1000))
    return FlightRecorder(capacity, clock=lambda: next(ticks), **kwargs)


class TestRing:
    def test_records_in_order_with_seq_and_time(self):
        recorder = make_recorder()
        recorder.record("worker.spawn", slot=0)
        recorder.record("lease.grant", lease=1, units=4)
        events = recorder.events()
        assert [e["kind"] for e in events] == ["worker.spawn",
                                              "lease.grant"]
        assert [e["seq"] for e in events] == [1, 2]
        # The constructor consumes one clock value for the epoch, so
        # the first record lands half a step later.
        assert events[0]["t_s"] == 0.5 and events[1]["t_s"] == 1.0
        assert events[1]["attrs"] == {"lease": 1, "units": 4}

    def test_overflow_evicts_oldest_and_counts_dropped(self):
        recorder = make_recorder(capacity=2)
        for n in range(5):
            recorder.record("e", n=n)
        events = recorder.events()
        assert [e["attrs"]["n"] for e in events] == [3, 4]
        assert recorder.dropped == 3

    def test_correlates_current_trace_span(self):
        recorder = make_recorder()
        tracer = Tracer()
        with observe(tracer=tracer):
            with tracer.span("survey.run") as span:
                recorder.record("inside")
            recorder.record("outside")
        inside, outside = recorder.events()
        assert inside["span_id"] == span.span_id
        assert "span_id" not in outside

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(0)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_FLIGHT_CAPACITY


class TestDump:
    def test_dump_writes_header_and_events(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        recorder = make_recorder(capacity=2, run_id="r123")
        for n in range(3):
            recorder.record("e", n=n)
        assert recorder.dump(path, reason="test") == path
        records = read_jsonl(path)                # CRC footer verifies
        header = records[0]
        assert header["type"] == "flight"
        assert header["reason"] == "test"
        assert header["capacity"] == 2
        assert header["events"] == 2
        assert header["dropped"] == 1
        assert header["run_id"] == "r123"
        assert [r["kind"] for r in records[1:]] == ["e", "e"]

    def test_dump_uses_configured_path(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        recorder = make_recorder(path=path)
        recorder.record("e")
        assert recorder.dump(reason="exit") == path

    def test_dump_without_destination_returns_none(self):
        recorder = make_recorder()
        recorder.record("e")
        assert recorder.dump(reason="manual") is None

    def test_repeated_dump_replaces_atomically(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        recorder = make_recorder(path=path)
        recorder.record("first")
        recorder.dump(reason="one")
        recorder.record("second")
        recorder.dump(reason="two")
        dump = load_flight(path)
        assert dump.reason == "two"
        assert [e["kind"] for e in dump.events] == ["first", "second"]


class TestLoadFlight:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        recorder = make_recorder(run_id="rid")
        recorder.record("worker.spawn", slot=1)
        recorder.dump(path, reason="drain")
        dump = load_flight(path)
        assert (dump.reason, dump.run_id, dump.dropped) == \
            ("drain", "rid", 0)
        assert dump.events[0]["attrs"] == {"slot": 1}

    def test_rejects_non_flight_artifact(self, tmp_path):
        from repro.state.atomic import atomic_write_jsonl

        path = str(tmp_path / "other.jsonl")
        atomic_write_jsonl(path, [{"type": "counter", "name": "x"}])
        with pytest.raises(ArtifactError, match="flight"):
            load_flight(path)

    def test_rejects_corrupt_dump(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = make_recorder()
        recorder.record("e")
        recorder.dump(str(path), reason="x")
        data = bytearray(path.read_bytes())
        data[15] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(ArtifactError):
            load_flight(str(path))


class TestNullFlight:
    def test_null_is_inert(self):
        assert NULL_FLIGHT.enabled is False
        NULL_FLIGHT.record("anything", x=1)
        assert NULL_FLIGHT.events() == []
        assert NULL_FLIGHT.dump(reason="x") is None
        assert NULL_FLIGHT.dropped == 0
