"""Unit tests for the JSON-lines / in-memory exporters and state scoping."""

import json

from repro.obs import (
    OBS,
    InMemoryExporter,
    JsonLinesExporter,
    MetricsRegistry,
    Tracer,
    disable,
    enable,
    metric_records,
    observe,
    span_records,
    summary_table,
)


def _clock():
    return iter(range(1000)).__next__


def make_pair():
    registry = MetricsRegistry()
    registry.counter("filters.parse.lines", kind="comment").inc(3)
    registry.gauge("measurement.survey.targets").set(105)
    registry.histogram("web.crawl.latency_ms", bounds=(1.0,)).observe(0.5)
    tracer = Tracer(clock=_clock())
    with tracer.span("survey.run"):
        with tracer.span("survey.crawl", group="top-5k"):
            pass
    return registry, tracer


class TestRecords:
    def test_metric_records_match_snapshot(self):
        registry, _ = make_pair()
        assert metric_records(registry) == registry.snapshot()

    def test_span_records_shape(self):
        _, tracer = make_pair()
        records = span_records(tracer)
        assert [r["name"] for r in records] == ["survey.run",
                                                "survey.crawl"]
        inner = records[1]
        assert inner["type"] == "span"
        assert inner["depth"] == 1
        assert inner["duration_ms"] == 1000.0
        assert inner["attrs"] == {"group": "top-5k"}


class TestInMemoryExporter:
    def test_collects_metrics_then_spans(self):
        registry, tracer = make_pair()
        records = InMemoryExporter().export(registry=registry,
                                            tracer=tracer)
        types = [r["type"] for r in records]
        assert types.index("span") > types.index("counter")
        assert len(records) == 3 + 2

    def test_partial_export(self):
        registry, tracer = make_pair()
        assert all(r["type"] != "span"
                   for r in InMemoryExporter().export(registry=registry))
        assert all(r["type"] == "span"
                   for r in InMemoryExporter().export(tracer=tracer))


class TestJsonLinesExporter:
    def test_writes_parseable_lines(self, tmp_path):
        registry, tracer = make_pair()
        path = tmp_path / "out.jsonl"
        written = JsonLinesExporter(str(path)).export(registry=registry,
                                                      tracer=tracer)
        lines = path.read_text(encoding="utf-8").splitlines()
        # Data records plus the trailing checksum footer.
        assert written == 5
        assert len(lines) == written + 1
        records = [json.loads(line) for line in lines]
        assert records[-2]["name"] == "survey.crawl"
        assert records[-1]["type"] == "footer"
        assert records[-1]["records"] == written

    def test_footer_verifies(self, tmp_path):
        from repro.state.atomic import ArtifactError, read_jsonl

        registry, tracer = make_pair()
        path = tmp_path / "out.jsonl"
        JsonLinesExporter(str(path)).export(registry=registry,
                                            tracer=tracer)
        records = read_jsonl(str(path))
        assert [r["type"] for r in records].count("span") == 2
        # Corrupt one byte: verification must catch it.
        data = bytearray(path.read_bytes())
        data[10] ^= 0x01
        path.write_bytes(bytes(data))
        try:
            read_jsonl(str(path))
        except ArtifactError:
            pass
        else:
            raise AssertionError("corruption went undetected")

    def test_identical_registries_byte_identical_files(self, tmp_path):
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            registry = MetricsRegistry()
            # Insertion order differs; export order must not.
            if name == "a.jsonl":
                registry.counter("x").inc()
                registry.counter("w", k="v").inc(2)
            else:
                registry.counter("w", k="v").inc(2)
                registry.counter("x").inc()
            path = tmp_path / name
            JsonLinesExporter(str(path)).export(registry=registry)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_export_truncates_previous_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        path = tmp_path / "m.jsonl"
        exporter = JsonLinesExporter(str(path))
        exporter.export(registry=registry)
        exporter.export(registry=registry)
        assert len(path.read_text().splitlines()) == 2  # record + footer

    def test_unicode_not_escaped(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("filters.top", filter="@@||müller.de^").inc()
        path = tmp_path / "m.jsonl"
        JsonLinesExporter(str(path)).export(registry=registry)
        assert "müller" in path.read_text(encoding="utf-8")


class TestSummaryTable:
    def test_renders_spans_and_metrics(self):
        registry, tracer = make_pair()
        text = summary_table(registry, tracer)
        assert "Where the time went" in text
        assert "survey.run" in text
        assert "filters.parse.lines{kind=comment}" in text

    def test_renders_empty(self):
        text = summary_table(None, None)
        assert "(none recorded)" in text


class TestObsState:
    def test_default_is_disabled(self):
        assert OBS.enabled is False
        assert OBS.registry.enabled is False
        assert OBS.tracer.enabled is False

    def test_observe_scopes_and_restores(self):
        with observe() as (registry, tracer):
            assert OBS.enabled is True
            assert OBS.registry is registry and OBS.tracer is tracer
            registry.counter("demo").inc()
        assert OBS.enabled is False
        assert registry.counter("demo").value == 1

    def test_observe_restores_on_exception(self):
        try:
            with observe():
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert OBS.enabled is False

    def test_observe_nests(self):
        with observe() as (outer_registry, _):
            with observe() as (inner_registry, _):
                assert OBS.registry is inner_registry
            assert OBS.registry is outer_registry
        assert OBS.enabled is False

    def test_enable_metrics_only_leaves_tracer_null(self):
        try:
            registry, tracer = enable(registry=MetricsRegistry())
            assert OBS.enabled is True
            assert registry.enabled is True
            assert tracer.enabled is False
        finally:
            disable()
        assert OBS.enabled is False

    def test_enable_with_injected_clock_tracer(self):
        try:
            _, tracer = enable(tracer=Tracer(clock=_clock()))
            with tracer.span("t"):
                pass
            assert tracer.spans[0].duration == 1
        finally:
            disable()
