"""The instrumented hot paths actually emit the documented metrics.

Every test scopes observability with ``observe()`` so nothing leaks
into other tests; a final test asserts the global switchboard is off.
"""

import random

from repro.filters import (
    AdblockEngine,
    ContentType,
    parse_filter,
    parse_filter_list,
)
from repro.filters.index import FilterIndex
from repro.obs import OBS, observe
from repro.web.crawler import crawl_health
from repro.web.http import ConnectTimeout
from repro.web.resilience import (
    CircuitBreaker,
    RetryPolicy,
    SimulatedClock,
    execute_with_policy,
)


class TestParserInstrumentation:
    def test_counts_by_parse_outcome(self):
        with observe() as (registry, _):
            parse_filter("! a comment")
            parse_filter("||adzerk.net^")
            parse_filter("@@||gstatic.com^$third-party")
            parse_filter("reddit.com###siteTable_organic")
            parse_filter("@@||bad.example^$bogus-option")
        flat = registry.flat()
        assert flat["filters.parse.lines{kind=comment}"] == 1
        assert flat["filters.parse.lines{kind=request}"] == 2
        assert flat["filters.parse.lines{kind=element}"] == 1
        assert flat["filters.parse.lines{kind=invalid}"] == 1

    def test_nothing_recorded_when_disabled(self):
        registry_before = OBS.registry
        parse_filter("||adzerk.net^")
        assert OBS.enabled is False
        assert OBS.registry is registry_before
        assert OBS.registry.samples() == []


class TestIndexInstrumentation:
    def test_add_splits_keyword_vs_fallback(self):
        with observe() as (registry, _):
            FilterIndex([parse_filter("||adzerk.net^"),
                         parse_filter("/banner[0-9]+/")])
        flat = registry.flat()
        assert flat["filters.index.filters{bucket=keyword}"] == 1
        assert flat["filters.index.filters{bucket=fallback}"] == 1

    def test_probe_counters(self):
        index = FilterIndex([parse_filter("||adzerk.net^"),
                             parse_filter("/banner[0-9]+/")])
        with observe() as (registry, _):
            hits = list(index.candidates("http://adzerk.net/ad.js"))
        assert len(hits) == 2  # keyword bucket + fallback
        flat = registry.flat()
        assert flat["filters.index.probes"] == 1
        assert flat["filters.index.candidates_yielded"] == 2
        assert flat["filters.index.fallback_scanned"] == 1
        assert flat["filters.index.bucket_hits"] == 1
        assert flat["filters.index.bucket_misses"] >= 1

    def test_candidates_identical_enabled_vs_disabled(self):
        filters = [parse_filter("||adzerk.net^"),
                   parse_filter("||doubleclick.net/ads"),
                   parse_filter("/banner[0-9]+/"),
                   parse_filter("@@||gstatic.com^$third-party")]
        index = FilterIndex(filters)
        url = "http://sub.adzerk.net/banner12/ads.js"
        bare = list(index.candidates(url))
        with observe():
            instrumented = list(index.candidates(url))
        assert instrumented == bare


class TestCompiledIndexInstrumentation:
    def make_compiled(self):
        from repro.filters.compiled.index import CompiledFilterIndex
        index = FilterIndex([parse_filter("||adzerk.net^"),
                             parse_filter("||doubleclick.net/ads"),
                             parse_filter("/banner[0-9]+/")])
        return CompiledFilterIndex.compile(index, name="blocking")

    def test_compile_records_builds_and_states(self):
        with observe() as (registry, _):
            compiled = self.make_compiled()
        flat = registry.flat()
        assert flat["filters.index.automaton_builds"
                    "{index=blocking,source=compile}"] == 1
        assert flat["filters.index.automaton_states{index=blocking}"] == \
            compiled.automaton.states

    def test_probe_counts_transitions_over_distinct_tokens(self):
        compiled = self.make_compiled()
        url = "http://adzerk.net/ads/adzerk"   # 'adzerk' repeats
        with observe() as (registry, _):
            candidates = list(compiled.candidates(url))
        assert candidates  # keyword bucket + fallback
        flat = registry.flat()
        assert flat["filters.index.probes"] == 1
        # One transition per byte of each *distinct* token: http,
        # adzerk, net, ads.
        assert flat["filters.index.automaton_transitions"] == \
            len("http") + len("adzerk") + len("net") + len("ads")
        assert flat["filters.index.bucket_hits"] == 1
        assert flat["filters.index.bucket_misses"] == 3
        assert flat["filters.index.fallback_scanned"] == 1

    def test_artifact_load_events(self, tmp_path):
        from repro.serve.reload import (build_snapshot_from_sources,
                                        persist_snapshot_artifact)
        from repro.state.snapshots import SnapshotStore
        store = SnapshotStore(str(tmp_path / "store"))
        sources = [("easylist", "||ads.example^")]
        with observe() as (registry, _):
            snapshot = build_snapshot_from_sources(sources, store)
            persist_snapshot_artifact(store, snapshot, sources)
            build_snapshot_from_sources(sources, store)
        flat = registry.flat()
        assert flat["filters.index.automaton_artifact"
                    "{event=load_miss}"] == 1
        assert flat["filters.index.automaton_artifact{event=saved}"] == 1
        assert flat["filters.index.automaton_artifact"
                    "{event=load_hit}"] == 1


class TestEngineInstrumentation:
    def make_engine(self) -> AdblockEngine:
        engine = AdblockEngine()
        engine.subscribe(parse_filter_list("||adzerk.net^$third-party",
                                           name="easylist"))
        engine.subscribe(parse_filter_list(
            "@@||adzerk.net/reddit/$subdocument,domain=reddit.com\n"
            "@@||gstatic.com^$third-party",
            name="exceptionrules"))
        return engine

    def test_verdict_counters(self):
        engine = self.make_engine()
        with observe() as (registry, _):
            engine.check_request("http://static.adzerk.net/ads.js",
                                 ContentType.SCRIPT,
                                 page_host="www.reddit.com",
                                 request_host="static.adzerk.net")
            engine.check_request(
                "http://static.adzerk.net/reddit/ads.html",
                ContentType.SUBDOCUMENT,
                page_host="www.reddit.com",
                request_host="static.adzerk.net")
            engine.check_request("http://example.com/page.css",
                                 ContentType.STYLESHEET,
                                 page_host="example.com",
                                 request_host="example.com")
        flat = registry.flat()
        assert flat[
            "filters.engine.verdicts{verdict=block,via=match}"] == 1
        assert flat[
            "filters.engine.verdicts{verdict=allow,via=match}"] == 1
        assert flat[
            "filters.engine.verdicts{verdict=no_match,via=match}"] == 1

    def test_needless_activation_counter(self):
        engine = self.make_engine()
        with observe() as (registry, _):
            # gstatic exception fires with no blocking filter to
            # override — the Section 5 "needless activation".
            decision = engine.check_request(
                "http://www.gstatic.com/swiffy/v5.2/runtime.js",
                ContentType.SCRIPT,
                page_host="www.deviantart.com",
                request_host="www.gstatic.com")
        assert decision.verdict.value == "allow"
        flat = registry.flat()
        assert flat["filters.engine.needless_activations"] == 1

    def test_decisions_identical_enabled_vs_disabled(self):
        engine = self.make_engine()
        calls = [
            ("http://static.adzerk.net/ads.js", ContentType.SCRIPT,
             "www.reddit.com", "static.adzerk.net"),
            ("http://example.com/x.css", ContentType.STYLESHEET,
             "example.com", "example.com"),
        ]
        bare = [engine.check_request(u, t, page_host=p, request_host=r)
                for u, t, p, r in calls]
        with observe():
            instrumented = [
                engine.check_request(u, t, page_host=p, request_host=r)
                for u, t, p, r in calls]
        assert [d.verdict for d in bare] == [
            d.verdict for d in instrumented]


class TestResilienceInstrumentation:
    def test_retry_counters_and_backoff_histogram(self):
        def flaky(attempt: int) -> str:
            if attempt == 1:
                raise ConnectTimeout("injected")
            return "ok"

        with observe() as (registry, _):
            outcome = execute_with_policy(
                flaky,
                policy=RetryPolicy(max_attempts=3, jitter=0.0),
                clock=SimulatedClock(),
                rng=random.Random(0))
        assert outcome.value == "ok"
        flat = registry.flat()
        assert flat[
            "web.retry.failures{error_class=connect-timeout}"] == 1
        assert flat["web.retry.backoff_sleeps"] == 1
        assert flat["web.retry.backoff_delay_ms.count"] == 1

    def test_breaker_transition_counters(self):
        with observe() as (registry, _):
            breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0)
            breaker.record_failure(0.0)       # -> open
            assert not breaker.allow(1.0)     # still open, no transition
            assert breaker.allow(10.0)        # -> half-open probe
            breaker.record_success()          # -> closed
        flat = registry.flat()
        assert flat["web.breaker.transitions{to=open}"] == 1
        assert flat["web.breaker.transitions{to=half-open}"] == 1
        assert flat["web.breaker.transitions{to=closed}"] == 1


class TestCrawlHealthSnapshot:
    def test_metrics_embedded_only_when_enabled(self):
        assert crawl_health([]).metrics == {}
        with observe() as (registry, _):
            registry.counter("filters.index.probes").inc(7)
            health = crawl_health([])
        assert health.metrics == {"filters.index.probes": 7}

    def test_render_includes_embedded_metrics(self):
        from repro.reporting.tables import render_crawl_health

        with observe() as (registry, _):
            registry.counter("filters.index.probes").inc(7)
            health = crawl_health([])
        text = render_crawl_health(health)
        assert "filters.index.probes" in text
        # Disabled health renders without the metric rows.
        assert "filters.index.probes" not in render_crawl_health(
            crawl_health([]))


def test_global_state_left_disabled():
    """No test in this module may leak an enabled registry."""
    assert OBS.enabled is False
    assert OBS.registry.samples() == []
