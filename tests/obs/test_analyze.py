"""Unit tests for artifact-driven trace/metric analysis."""

import json
import random

import pytest

from repro.obs import JsonLinesExporter, MetricsRegistry, Tracer
from repro.obs.analyze import (
    build_span_tree,
    critical_path,
    diff_runs,
    flatten,
    load_artifact,
    percentile_from_buckets,
    slowest_spans,
)
from repro.obs.export import span_records
from repro.state.atomic import ArtifactError


def _span(name, span_id, parent_id, depth, start, duration):
    return {"type": "span", "name": name, "span_id": span_id,
            "parent_id": parent_id, "depth": depth, "start_s": start,
            "duration_ms": duration, "attrs": {}}


#: A known tree: run(100) -> crawl(70) -> visit_a(40), visit_b(20);
#: run -> report(10).  Critical path: run -> crawl -> visit_a.
_TREE = [
    _span("run", "r0", "", 0, 0.0, 100.0),
    _span("crawl", "c0", "r0", 1, 0.001, 70.0),
    _span("visit_a", "va", "c0", 2, 0.002, 40.0),
    _span("visit_b", "vb", "c0", 2, 0.050, 20.0),
    _span("report", "p0", "r0", 1, 0.080, 10.0),
]


class TestBuildSpanTree:
    def test_reconstructs_from_shuffled_records(self):
        rng = random.Random(7)
        for _ in range(10):
            shuffled = list(_TREE)
            rng.shuffle(shuffled)
            (root,) = build_span_tree(shuffled)
            assert [n.name for n in root.walk()] == \
                ["run", "crawl", "visit_a", "visit_b", "report"]

    def test_self_vs_cumulative(self):
        (root,) = build_span_tree(_TREE)
        by_name = {n.name: n for n in root.walk()}
        assert by_name["run"].cumulative_ms == 100.0
        assert by_name["run"].self_ms == 20.0        # 100 - 70 - 10
        assert by_name["crawl"].self_ms == 10.0      # 70 - 40 - 20
        assert by_name["visit_a"].self_ms == 40.0    # leaf

    def test_self_time_clamped_for_cross_clock_children(self):
        # Adopted children timed on a simulated clock can nominally
        # exceed their wall-clocked parent; self time clamps at zero.
        records = [
            _span("parent", "p", "", 0, 0.0, 5.0),
            _span("child", "c", "p", 1, 0.0, 50.0),
        ]
        (root,) = build_span_tree(records)
        assert root.self_ms == 0.0

    def test_unknown_parent_makes_a_root(self):
        orphan = _span("orphan", "x", "not-in-artifact", 3, 1.0, 2.0)
        roots = build_span_tree(_TREE + [orphan])
        assert {r.name for r in roots} == {"run", "orphan"}

    def test_positional_fallback_without_ids(self):
        legacy = [{"type": "span", "name": name, "depth": depth,
                   "start_s": i * 0.01, "duration_ms": 10.0, "attrs": {}}
                  for i, (name, depth) in enumerate(
                      [("run", 0), ("crawl", 1), ("visit", 2),
                       ("report", 1)])]
        (root,) = build_span_tree(legacy)
        assert [n.name for n in root.walk()] == \
            ["run", "crawl", "visit", "report"]

    def test_empty(self):
        assert build_span_tree([]) == []


class TestCriticalPath:
    def test_known_trace(self):
        path = critical_path(build_span_tree(_TREE))
        assert [n.name for n in path] == ["run", "crawl", "visit_a"]

    def test_empty(self):
        assert critical_path([]) == []

    def test_picks_heaviest_root(self):
        forest = build_span_tree([
            _span("small", "s", "", 0, 0.0, 5.0),
            _span("big", "b", "", 0, 1.0, 50.0),
        ])
        assert [n.name for n in critical_path(forest)] == ["big"]


class TestSlowestSpans:
    def test_by_cumulative(self):
        names = [n.name for n in slowest_spans(_TREE, top=3)]
        assert names == ["run", "crawl", "visit_a"]

    def test_by_self(self):
        names = [n.name for n in slowest_spans(_TREE, top=3, by="self")]
        assert names == ["visit_a", "run", "visit_b"]

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError, match="cumulative"):
            slowest_spans(_TREE, by="total")


class TestPercentileFromBuckets:
    def test_matches_live_histogram(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", bounds=(10.0, 100.0, 1000.0))
        for v in (2, 4, 8, 16, 32, 64, 128, 256, 512):
            h.observe(v)
        (record,) = registry.snapshot()
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert percentile_from_buckets(record["buckets"], q) == \
                h.percentile(q)


class TestFlatten:
    def test_matches_registry_flat(self):
        registry = MetricsRegistry()
        registry.counter("events", kind="x").inc(3)
        registry.gauge("size").set(7)
        registry.histogram("lat", bounds=(10.0,)).observe(4.0)
        assert flatten(registry.snapshot()) == registry.flat()

    def test_ignores_non_metric_records(self):
        assert flatten([{"type": "run", "run_id": "ab"},
                        _span("s", "a", "", 0, 0.0, 1.0)]) == {}


class TestLoadArtifact:
    def test_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events").inc(2)
        ticks = iter(range(10))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with tracer.span("run"):
            with tracer.span("step"):
                pass
        path = str(tmp_path / "run.jsonl")
        JsonLinesExporter(path, run_id="ab12cd34ef567890").export(
            registry=registry, tracer=tracer)
        artifact = load_artifact(path)
        assert artifact.run_id == "ab12cd34ef567890"
        assert artifact.metrics == registry.snapshot()
        assert artifact.spans == span_records(tracer)
        assert artifact.flat == registry.flat()

    def test_bench_json_document(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({
            "parallel": {"simulated_speedup": {"2": 1.8, "8": 6.4},
                         "note": "text is skipped"},
            "flag": True,
            "count": 3,
        }))
        artifact = load_artifact(str(path))
        assert artifact.run_id is None
        assert artifact.spans == [] and artifact.metrics == []
        assert artifact.flat == {
            "parallel.simulated_speedup.2": 1.8,
            "parallel.simulated_speedup.8": 6.4,
            "count": 3,
        }

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x00not json\x00")
        with pytest.raises((ArtifactError, ValueError)):
            load_artifact(str(path))

    def test_non_dict_document_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ArtifactError, match="neither"):
            load_artifact(str(path))


class TestDiffRuns:
    def test_within_and_beyond_tolerance(self):
        report = diff_runs({"a": 10.0, "b": 10.0},
                           {"a": 12.0, "b": 13.0}, tolerance=0.25)
        by_name = {d.name: d for d in report.deltas}
        assert not by_name["a"].violation         # +20%
        assert by_name["b"].violation             # +30%
        assert not report.ok
        assert [d.name for d in report.violations] == ["b"]

    def test_exactly_at_tolerance_passes(self):
        report = diff_runs({"a": 100.0}, {"a": 125.0}, tolerance=0.25)
        assert report.ok

    def test_improvement_beyond_tolerance_also_gates(self):
        # Symmetric by design: a huge "speedup" usually means the
        # benchmark broke, not that the code got 10x faster.
        report = diff_runs({"a": 100.0}, {"a": 10.0}, tolerance=0.25)
        assert not report.ok

    def test_missing_in_baseline_reported_not_gating(self):
        report = diff_runs({}, {"new_metric": 5.0})
        (delta,) = report.deltas
        assert delta.baseline is None and delta.candidate == 5.0
        assert delta.relative is None and not delta.violation
        assert report.ok

    def test_missing_in_candidate_reported_not_gating(self):
        report = diff_runs({"gone": 5.0}, {})
        (delta,) = report.deltas
        assert delta.candidate is None and not delta.violation

    def test_zero_baseline_moving_violates(self):
        report = diff_runs({"z": 0.0}, {"z": 0.001})
        (delta,) = report.deltas
        assert delta.relative == float("inf") and delta.violation

    def test_zero_to_zero_passes(self):
        assert diff_runs({"z": 0.0}, {"z": 0.0}).ok

    def test_metric_filter(self):
        report = diff_runs({"keep.a": 1.0, "drop.b": 1.0},
                           {"keep.a": 9.0, "drop.b": 9.0},
                           metrics=["keep.*"])
        assert [d.name for d in report.deltas] == ["keep.a"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            diff_runs({}, {}, tolerance=-0.1)
