"""Tests for Prometheus text rendering and the strict parser."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.prometheus import (
    PrometheusFormatError,
    parse_prometheus_text,
    render_prometheus_text,
)


class TestRender:
    def test_counter_gains_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests", route="/v1/match").inc(3)
        text = render_prometheus_text(registry)
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_requests_total{route="/v1/match"} 3' in text

    def test_dotted_names_sanitize_to_underscores(self):
        registry = MetricsRegistry()
        registry.gauge("serve.reload.epoch").set(2)
        text = render_prometheus_text(registry)
        assert "serve_reload_epoch 2" in text
        assert "." not in text.split("\n")[-2].split(" ")[0]

    def test_help_and_type_lines_precede_samples(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        lines = render_prometheus_text(registry).splitlines()
        assert lines[0] == "# HELP n_total repro counter n"
        assert lines[1] == "# TYPE n_total counter"
        assert lines[2] == "n_total 1"

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("serve.latency_ms")
        for value in (0.5, 0.5, 40.0):
            histogram.observe(value)
        text = render_prometheus_text(registry)
        families = parse_prometheus_text(text)
        samples = families["serve_latency_ms"]["samples"]
        buckets = [(labels["le"], value) for name, labels, value in samples
                   if name.endswith("_bucket")]
        assert buckets[-1][0] == "+Inf"
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)           # cumulative
        assert counts[-1] == 3
        count = [value for name, _, value in samples
                 if name.endswith("_count")]
        assert count == [3]

    def test_label_values_escape_quotes_and_backslashes(self):
        registry = MetricsRegistry()
        registry.counter("c", tag='say "hi"\\now').inc()
        text = render_prometheus_text(registry)
        families = parse_prometheus_text(text)
        _, labels, _ = families["c_total"]["samples"][0]
        assert labels["tag"] == 'say "hi"\\now'

    def test_identical_registries_render_identically(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("a", x="1").inc(2)
            registry.gauge("b").set(0.5)
            registry.histogram("h").observe(1.0)
            return render_prometheus_text(registry)

        assert build() == build()

    def test_empty_registry_renders_empty(self):
        assert render_prometheus_text(MetricsRegistry()) == ""

    def test_conflicting_family_types_raise(self):
        registry = MetricsRegistry()
        registry.counter("x.y").inc()
        registry.gauge("x_y_total").set(1)
        with pytest.raises(ValueError, match="conflicting"):
            render_prometheus_text(registry)


class TestParseRoundTrip:
    def test_full_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests", route="/v1/match").inc(7)
        registry.gauge("serve.inflight").set(2)
        registry.histogram("serve.latency_ms", route="/v1/match").observe(3.0)
        families = parse_prometheus_text(render_prometheus_text(registry))
        assert families["serve_requests_total"]["type"] == "counter"
        assert families["serve_inflight"]["type"] == "gauge"
        assert families["serve_latency_ms"]["type"] == "histogram"
        name, labels, value = families["serve_requests_total"]["samples"][0]
        assert (labels, value) == ({"route": "/v1/match"}, 7)

    def test_parses_empty_exposition(self):
        assert parse_prometheus_text("") == {}

    def test_ignores_blank_lines_and_comments(self):
        text = ("# a free-form comment\n"
                "\n"
                "# TYPE g gauge\n"
                "g 1\n")
        assert parse_prometheus_text(text)["g"]["samples"] == \
            [("g", {}, 1.0)]


class TestParseErrors:
    def test_rejects_missing_trailing_newline(self):
        with pytest.raises(PrometheusFormatError, match="newline"):
            parse_prometheus_text("# TYPE g gauge\ng 1")

    def test_rejects_sample_without_type(self):
        with pytest.raises(PrometheusFormatError, match="no preceding"):
            parse_prometheus_text("orphan 1\n")

    def test_rejects_malformed_sample_line(self):
        with pytest.raises(PrometheusFormatError, match="malformed sample"):
            parse_prometheus_text("# TYPE g gauge\ng 1 2 3 junk here\n")

    def test_rejects_bad_value(self):
        with pytest.raises(PrometheusFormatError, match="invalid sample"):
            parse_prometheus_text("# TYPE g gauge\ng one\n")

    def test_rejects_duplicate_type_line(self):
        with pytest.raises(PrometheusFormatError, match="duplicate TYPE"):
            parse_prometheus_text(
                "# TYPE g gauge\n# TYPE g gauge\ng 1\n")

    def test_rejects_unknown_metric_type(self):
        with pytest.raises(PrometheusFormatError, match="unknown"):
            parse_prometheus_text("# TYPE g widget\ng 1\n")

    def test_rejects_malformed_label_pair(self):
        with pytest.raises(PrometheusFormatError, match="label"):
            parse_prometheus_text("# TYPE g gauge\ng{oops} 1\n")

    def test_rejects_histogram_without_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1.0"} 1\n'
                "h_sum 0.5\n"
                "h_count 1\n")
        with pytest.raises(PrometheusFormatError, match=r"\+Inf"):
            parse_prometheus_text(text)

    def test_rejects_non_cumulative_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1.0"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1.0\n"
                "h_count 3\n")
        with pytest.raises(PrometheusFormatError, match="cumulative"):
            parse_prometheus_text(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1.0\n"
                "h_count 4\n")
        with pytest.raises(PrometheusFormatError, match="disagrees"):
            parse_prometheus_text(text)

    def test_rejects_histogram_missing_count(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 1\n'
                "h_sum 1.0\n")
        with pytest.raises(PrometheusFormatError, match="missing"):
            parse_prometheus_text(text)
