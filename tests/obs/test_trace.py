"""Unit tests for the span tracer."""

from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


def counting_clock():
    """A deterministic clock: 0, 1, 2, ... seconds."""
    return iter(range(1000)).__next__


class TestTracer:
    def test_spans_record_in_start_order_with_depth(self):
        tracer = Tracer(clock=counting_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert [(s.name, s.depth) for s in tracer.spans] == [
            ("outer", 0), ("inner", 1), ("sibling", 1)]

    def test_durations_from_injected_clock(self):
        tracer = Tracer(clock=counting_clock())
        # Clock ticks: outer start=0, inner start=1, inner end=2,
        # outer end=3.
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        assert (outer.duration, inner.duration) == (3, 1)
        assert outer.duration_ms == 3000.0

    def test_attrs_and_set_attr(self):
        tracer = Tracer(clock=counting_clock())
        with tracer.span("crawl", group="top-5k") as span:
            span.set_attr("targets", 42)
        assert tracer.spans[0].attrs == {"group": "top-5k",
                                         "targets": 42}

    def test_finished_spans_excludes_open_ones(self):
        tracer = Tracer(clock=counting_clock())
        span = tracer.span("open")
        span.__enter__()
        with tracer.span("closed"):
            pass
        assert [s.name for s in tracer.finished_spans()] == ["closed"]
        span.__exit__(None, None, None)
        assert len(tracer.finished_spans()) == 2

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=counting_clock())
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.spans[0].duration is not None
        assert tracer._stack == []

    def test_reset(self):
        tracer = Tracer(clock=counting_clock())
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.spans == [] and tracer.finished_spans() == []

    def test_sequential_spans_back_at_depth_zero(self):
        tracer = Tracer(clock=counting_clock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.depth for s in tracer.spans] == [0, 0]


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False

    def test_span_records_nothing(self):
        with NULL_TRACER.span("ignored", attr=1) as span:
            span.set_attr("more", 2)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.finished_spans() == []

    def test_shared_null_span(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
