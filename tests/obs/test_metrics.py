"""Unit tests for the metric instruments and the registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("events")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_kind(self):
        assert Counter("x").kind == "counter"


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("size")
        g.set(10)
        g.set(3)
        assert g.value == 3

    def test_inc(self):
        g = Gauge("size")
        g.inc(2)
        g.inc(-1)
        assert g.value == 1


class TestHistogram:
    def test_bucket_edges_are_upper_inclusive(self):
        h = Histogram("lat", bounds=(10.0, 100.0))
        h.observe(10.0)   # lands in the first bucket, not the second
        h.observe(10.001)
        h.observe(100.0)
        h.observe(100.001)  # beyond the last edge -> +inf bucket
        assert h.counts == [1, 2, 1]

    def test_counts_has_inf_bucket(self):
        h = Histogram("lat", bounds=DEFAULT_BUCKETS)
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1

    def test_sum_count_mean(self):
        h = Histogram("lat", bounds=(10.0,))
        for v in (2, 4, 6):
            h.observe(v)
        assert (h.count, h.sum, h.mean) == (3, 12, 4.0)

    def test_empty_mean_is_zero(self):
        assert Histogram("lat").mean == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(10.0, 5.0))

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(5.0, 5.0))


class TestHistogramPercentile:
    def test_interpolates_within_bucket(self):
        h = Histogram("lat", bounds=(10.0, 100.0))
        for v in (2, 4, 6, 8):
            h.observe(v)
        # All four observations sit in [0, 10]; the q-th observation is
        # q% of the way through the bucket under the uniform assumption.
        assert h.percentile(25) == 2.5
        assert h.percentile(50) == 5.0
        assert h.percentile(100) == 10.0

    def test_spans_buckets(self):
        h = Histogram("lat", bounds=(10.0, 100.0))
        h.observe(5.0)
        h.observe(50.0)
        assert h.percentile(50) == 10.0   # end of the first bucket
        assert h.percentile(75) == 55.0   # halfway into the second

    def test_error_bounded_by_bucket_width(self):
        h = Histogram("lat", bounds=(10.0, 100.0, 1000.0))
        for v in (150.0, 850.0, 999.0):
            h.observe(v)
        for q in (1, 50, 99):
            estimate = h.percentile(q)
            assert 100.0 <= estimate <= 1000.0  # the containing bucket

    def test_inf_bucket_clamps_to_last_bound(self):
        h = Histogram("lat", bounds=(10.0,))
        h.observe(99_999.0)
        assert h.percentile(99) == 10.0

    def test_empty_is_zero(self):
        assert Histogram("lat", bounds=(10.0,)).percentile(95) == 0.0

    def test_out_of_range_rejected(self):
        h = Histogram("lat", bounds=(10.0,))
        for bad in (-1, 100.5):
            with pytest.raises(ValueError, match="percentile"):
                h.percentile(bad)

    def test_flat_view_exposes_percentiles(self):
        r = MetricsRegistry()
        h = r.histogram("lat", bounds=(10.0,))
        for v in (2, 4, 6, 8):
            h.observe(v)
        flat = r.flat()
        assert flat["lat.p50"] == 5.0
        assert set(flat) >= {"lat.count", "lat.mean", "lat.p50",
                             "lat.p95", "lat.p99"}


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_label_order_is_canonical(self):
        r = MetricsRegistry()
        assert (r.counter("a", x=1, y=2)
                is r.counter("a", y=2, x=1))

    def test_distinct_labels_are_distinct_instruments(self):
        r = MetricsRegistry()
        r.counter("verdicts", verdict="block").inc()
        r.counter("verdicts", verdict="allow").inc(2)
        assert r.counter("verdicts", verdict="block").value == 1
        assert r.counter("verdicts", verdict="allow").value == 2

    def test_same_name_different_kinds_coexist(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.gauge("x").set(7)
        assert r.counter("x").value == 1
        assert r.gauge("x").value == 7

    def test_samples_deterministic_order(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.counter("a", z=1).inc()
        r.counter("a").inc()
        names = [(m.name, m.labels) for m in r.samples()]
        r2 = MetricsRegistry()
        r2.counter("a").inc()
        r2.counter("b").inc()
        r2.counter("a", z=1).inc()
        assert names == [(m.name, m.labels) for m in r2.samples()]

    def test_snapshot_counter_record(self):
        r = MetricsRegistry()
        r.counter("parse.lines", kind="comment").inc(3)
        assert r.snapshot() == [{
            "type": "counter", "name": "parse.lines",
            "labels": {"kind": "comment"}, "value": 3}]

    def test_snapshot_histogram_buckets_disjoint_with_inf(self):
        r = MetricsRegistry()
        h = r.histogram("lat", bounds=(1.0, 5.0))
        h.observe(0.5)
        h.observe(3.0)
        h.observe(99.0)
        (record,) = r.snapshot()
        assert record["count"] == 3
        assert record["buckets"] == [
            {"le": 1.0, "count": 1},
            {"le": 5.0, "count": 1},
            {"le": "+inf", "count": 1},
        ]

    def test_flat_formats_labels_and_histograms(self):
        r = MetricsRegistry()
        r.counter("verdicts", verdict="block").inc(2)
        h = r.histogram("lat", bounds=(10.0,))
        h.observe(3)
        h.observe(6)
        flat = r.flat()
        assert flat["verdicts{verdict=block}"] == 2
        assert flat["lat.count"] == 2
        assert flat["lat.mean"] == 4.5

    def test_reset_and_len(self):
        r = MetricsRegistry()
        r.counter("a").inc()
        assert len(r) == 1
        r.reset()
        assert len(r) == 0 and r.samples() == []


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("events", kind="x").inc(2)
        b.counter("events", kind="x").inc(3)
        b.counter("events", kind="y").inc(1)
        a.merge(b)
        assert a.counter("events", kind="x").value == 5
        assert a.counter("events", kind="y").value == 1

    def test_gauges_take_incoming_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("size").set(10)
        b.gauge("size").set(3)
        a.merge(b)
        assert a.gauge("size").value == 3

    def test_histograms_add_buckets_counts_and_sums(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (5, 50):
            a.histogram("lat", bounds=(10.0, 100.0)).observe(value)
        for value in (7, 700):
            b.histogram("lat", bounds=(10.0, 100.0)).observe(value)
        a.merge(b)
        merged = a.histogram("lat", bounds=(10.0, 100.0))
        assert merged.counts == [2, 1, 1]
        assert (merged.count, merged.sum) == (4, 762)

    def test_histogram_bounds_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", bounds=(10.0,)).observe(1)
        b.histogram("lat", bounds=(10.0, 100.0)).observe(1)
        with pytest.raises(ValueError, match="bounds differ"):
            a.merge(b)

    def test_merge_accepts_snapshot_records(self):
        """Workers send snapshots (plain JSON), not registry objects."""
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("events").inc(4)
        b.histogram("lat", bounds=(10.0,)).observe(3)
        a.merge(b.snapshot())
        assert a.counter("events").value == 4
        assert a.histogram("lat", bounds=(10.0,)).count == 1

    def test_merge_into_empty_equals_source_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("events", kind="x").inc(2)
        b.gauge("size").set(7)
        b.histogram("lat", bounds=(10.0,)).observe(3)
        a.merge(b)
        assert a.snapshot() == b.snapshot()

    def test_pairwise_merge_order_is_deterministic(self):
        """Merging the same snapshots in the same order reproduces sums."""
        snapshots = []
        for value in (0.1, 0.2, 0.3):
            r = MetricsRegistry()
            r.histogram("lat", bounds=(10.0,)).observe(value)
            snapshots.append(r.snapshot())
        merged_a, merged_b = MetricsRegistry(), MetricsRegistry()
        for snapshot in snapshots:
            merged_a.merge(snapshot)
            merged_b.merge(snapshot)
        assert merged_a.snapshot() == merged_b.snapshot()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="cannot merge"):
            MetricsRegistry().merge([{"type": "summary", "name": "x"}])

    def test_null_registry_discards_merges(self):
        source = MetricsRegistry()
        source.counter("events").inc(5)
        NULL_REGISTRY.merge(source)
        assert NULL_REGISTRY.snapshot() == []


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry.enabled is True

    def test_all_accessors_discard_updates(self):
        NULL_REGISTRY.counter("x", any_label="y").inc(100)
        NULL_REGISTRY.gauge("x").set(5)
        NULL_REGISTRY.histogram("x").observe(1.0)
        assert NULL_REGISTRY.samples() == []
        assert NULL_REGISTRY.snapshot() == []
        assert NULL_REGISTRY.flat() == {}

    def test_shared_instrument_never_accumulates(self):
        instrument = NULL_REGISTRY.counter("a")
        instrument.inc(10)
        assert instrument.value == 0
