"""Unit tests for the metric instruments and the registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("events")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_kind(self):
        assert Counter("x").kind == "counter"


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("size")
        g.set(10)
        g.set(3)
        assert g.value == 3

    def test_inc(self):
        g = Gauge("size")
        g.inc(2)
        g.inc(-1)
        assert g.value == 1


class TestHistogram:
    def test_bucket_edges_are_upper_inclusive(self):
        h = Histogram("lat", bounds=(10.0, 100.0))
        h.observe(10.0)   # lands in the first bucket, not the second
        h.observe(10.001)
        h.observe(100.0)
        h.observe(100.001)  # beyond the last edge -> +inf bucket
        assert h.counts == [1, 2, 1]

    def test_counts_has_inf_bucket(self):
        h = Histogram("lat", bounds=DEFAULT_BUCKETS)
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1

    def test_sum_count_mean(self):
        h = Histogram("lat", bounds=(10.0,))
        for v in (2, 4, 6):
            h.observe(v)
        assert (h.count, h.sum, h.mean) == (3, 12, 4.0)

    def test_empty_mean_is_zero(self):
        assert Histogram("lat").mean == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(10.0, 5.0))

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(5.0, 5.0))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_label_order_is_canonical(self):
        r = MetricsRegistry()
        assert (r.counter("a", x=1, y=2)
                is r.counter("a", y=2, x=1))

    def test_distinct_labels_are_distinct_instruments(self):
        r = MetricsRegistry()
        r.counter("verdicts", verdict="block").inc()
        r.counter("verdicts", verdict="allow").inc(2)
        assert r.counter("verdicts", verdict="block").value == 1
        assert r.counter("verdicts", verdict="allow").value == 2

    def test_same_name_different_kinds_coexist(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.gauge("x").set(7)
        assert r.counter("x").value == 1
        assert r.gauge("x").value == 7

    def test_samples_deterministic_order(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.counter("a", z=1).inc()
        r.counter("a").inc()
        names = [(m.name, m.labels) for m in r.samples()]
        r2 = MetricsRegistry()
        r2.counter("a").inc()
        r2.counter("b").inc()
        r2.counter("a", z=1).inc()
        assert names == [(m.name, m.labels) for m in r2.samples()]

    def test_snapshot_counter_record(self):
        r = MetricsRegistry()
        r.counter("parse.lines", kind="comment").inc(3)
        assert r.snapshot() == [{
            "type": "counter", "name": "parse.lines",
            "labels": {"kind": "comment"}, "value": 3}]

    def test_snapshot_histogram_buckets_disjoint_with_inf(self):
        r = MetricsRegistry()
        h = r.histogram("lat", bounds=(1.0, 5.0))
        h.observe(0.5)
        h.observe(3.0)
        h.observe(99.0)
        (record,) = r.snapshot()
        assert record["count"] == 3
        assert record["buckets"] == [
            {"le": 1.0, "count": 1},
            {"le": 5.0, "count": 1},
            {"le": "+inf", "count": 1},
        ]

    def test_flat_formats_labels_and_histograms(self):
        r = MetricsRegistry()
        r.counter("verdicts", verdict="block").inc(2)
        h = r.histogram("lat", bounds=(10.0,))
        h.observe(3)
        h.observe(6)
        flat = r.flat()
        assert flat["verdicts{verdict=block}"] == 2
        assert flat["lat.count"] == 2
        assert flat["lat.mean"] == 4.5

    def test_reset_and_len(self):
        r = MetricsRegistry()
        r.counter("a").inc()
        assert len(r) == 1
        r.reset()
        assert len(r) == 0 and r.samples() == []


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry.enabled is True

    def test_all_accessors_discard_updates(self):
        NULL_REGISTRY.counter("x", any_label="y").inc(100)
        NULL_REGISTRY.gauge("x").set(5)
        NULL_REGISTRY.histogram("x").observe(1.0)
        assert NULL_REGISTRY.samples() == []
        assert NULL_REGISTRY.snapshot() == []
        assert NULL_REGISTRY.flat() == {}

    def test_shared_instrument_never_accumulates(self):
        instrument = NULL_REGISTRY.counter("a")
        instrument.inc(10)
        assert instrument.value == 0
