"""Unit tests for the Blockable Items report."""

from repro.filters.engine import AdblockEngine
from repro.filters.filterlist import parse_filter_list
from repro.web.browser import InstrumentedBrowser
from repro.web.devtools import (
    Disposition,
    blockable_items,
    render_blockable_items,
)
from repro.web.sites import PINNED_PROFILES, SiteProfile


def visit_with(blocking: str, exceptions: str, profile: SiteProfile):
    engine = AdblockEngine()
    engine.subscribe(parse_filter_list(blocking, name="easylist"))
    if exceptions:
        engine.subscribe(parse_filter_list(exceptions, name="whitelist"))
    return InstrumentedBrowser(engine).visit(profile)


class TestDispositions:
    def test_blocked_item(self):
        visit = visit_with("||adzerk.net^$third-party", "",
                           PINNED_PROFILES["reddit.com"])
        items = blockable_items(visit)
        blocked = [i for i in items
                   if i.disposition is Disposition.BLOCKED]
        assert any("adzerk" in i.target for i in blocked)

    def test_allowed_item_lists_both_filters(self):
        visit = visit_with(
            "||adzerk.net^$third-party",
            "@@||static.adzerk.net^$third-party,domain=reddit.com",
            PINNED_PROFILES["reddit.com"])
        allowed = [i for i in blockable_items(visit)
                   if i.disposition is Disposition.ALLOWED]
        assert allowed
        item = allowed[0]
        assert item.blocking_filters and item.exception_filters
        lists = {name for name, _ in item.filters}
        assert lists == {"easylist", "whitelist"}

    def test_needless_allowance_flagged(self):
        visit = visit_with(
            "||unrelated.example^",
            "@@||gstatic.com^$third-party",
            PINNED_PROFILES["reddit.com"])
        needless = [i for i in blockable_items(visit)
                    if i.disposition is Disposition.NEEDLESSLY_ALLOWED]
        assert any("gstatic" in i.target for i in needless)

    def test_hidden_element(self):
        profile = SiteProfile(domain="plain.com", rank=5_000,
                              networks=["generic-banner"],
                              first_party_ads=(
                                  ("img", "class", "banner-ad", "b"),))
        visit = visit_with("##.banner-ad", "", profile)
        hidden = [i for i in blockable_items(visit)
                  if i.disposition is Disposition.HIDDEN]
        assert hidden

    def test_unhidden_element(self):
        profile = SiteProfile(domain="plain.com", rank=5_000,
                              networks=[],
                              first_party_ads=(
                                  ("img", "class", "banner-ad", "b"),))
        visit = visit_with("##.banner-ad", "plain.com#@#.banner-ad",
                           profile)
        unhidden = [i for i in blockable_items(visit)
                    if i.disposition is Disposition.UNHIDDEN]
        assert unhidden

    def test_items_deduplicate_by_target(self):
        visit = visit_with("||adzerk.net^$third-party", "",
                           PINNED_PROFILES["reddit.com"])
        items = blockable_items(visit)
        targets = [(i.kind, i.target) for i in items]
        assert len(targets) == len(set(targets))


class TestRendering:
    def test_render_contains_summary(self):
        visit = visit_with("||adzerk.net^$third-party", "",
                           PINNED_PROFILES["reddit.com"])
        text = render_blockable_items(visit)
        assert "Blockable items" in text
        assert "blocked" in text

    def test_render_empty_visit(self):
        visit = visit_with("||nothing-here.example^", "",
                           PINNED_PROFILES["wikipedia.org"])
        text = render_blockable_items(visit)
        assert "no filters matched" in text

    def test_long_targets_truncated(self):
        visit = visit_with("||adzerk.net^$third-party", "",
                           PINNED_PROFILES["reddit.com"])
        text = render_blockable_items(visit, width=20)
        for line in text.splitlines():
            if "..." in line:
                break
        else:
            raise AssertionError("expected a truncated target line")
