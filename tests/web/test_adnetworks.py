"""Unit tests for the ad-network catalog and variant machinery."""

from repro.filters.options import ContentType
from repro.filters.parser import RequestFilter, parse_filter
from repro.web.adnetworks import (
    NETWORK_CATALOG,
    blocking_networks,
    network,
    whitelisted_networks,
)
from repro.web.sites import build_page, profile_for_domain, SiteProfile


class TestCatalogConsistency:
    def test_whitelisted_networks_have_whitelist_filters(self):
        for net in whitelisted_networks():
            assert net.whitelist_filters

    def test_blocking_networks_have_blocking_filters(self):
        for net in blocking_networks():
            assert net.blocking_filters

    def test_gstatic_is_deliberately_unblocked(self):
        assert network("gstatic").blocking_filters == ()

    def test_every_resource_url_is_wellformed_template(self):
        for net in NETWORK_CATALOG:
            for resource in net.resources:
                url = resource.url_template.format(
                    host="site.com",
                    variant=(resource.variants[0]
                             if resource.variants else ""))
                assert url.startswith("http")

    def test_whitelist_filter_matches_every_variant(self):
        """The broad-exception / narrow-blocking asymmetry of Fig 8:
        each network's whitelist filter must cover all its variants."""
        for net in whitelisted_networks():
            exceptions = [parse_filter(t) for t in net.whitelist_filters
                          if t.startswith("@@")]
            for resource in net.resources:
                variants = resource.variants or ("",)
                for variant in variants:
                    url = resource.url_template.format(
                        host="site.com", variant=variant)
                    from repro.web.url import parse_url

                    host = parse_url(url).host
                    matched = any(
                        isinstance(f, RequestFilter)
                        and not f.is_domain_restricted
                        and f.matches(url, resource.content_type,
                                      "page.com", host)
                        for f in exceptions)
                    assert matched or not exceptions or any(
                        f.is_domain_restricted for f in exceptions
                        if isinstance(f, RequestFilter)), (net.name, url)

    def test_blocking_covers_every_variant(self):
        """Every variant of a blocked network must hit some blocking
        filter — otherwise a whitelist exception could be needless by
        accident rather than by design."""
        from repro.web.url import parse_url

        for net in NETWORK_CATALOG:
            if not net.blocking_filters:
                continue
            blockers = [parse_filter(t) for t in net.blocking_filters
                        if "##" not in t]
            for resource in net.resources:
                for variant in (resource.variants or ("",)):
                    url = resource.url_template.format(
                        host="site.com", variant=variant)
                    host = parse_url(url).host
                    assert any(
                        f.matches(url, resource.content_type,
                                  "page.com", host)
                        for f in blockers
                        if isinstance(f, RequestFilter)), (net.name, url)


class TestVariantSelection:
    def test_same_site_same_variant(self):
        profile = profile_for_domain("variantcheck.com", 321)
        if "doubleclick-conversion" not in profile.networks:
            profile = SiteProfile(domain="variantcheck.com", rank=321,
                                  networks=["doubleclick-conversion"])
        first = [r.url for r in build_page(profile).requests
                 if r.network == "doubleclick-conversion"]
        second = [r.url for r in build_page(profile).requests
                  if r.network == "doubleclick-conversion"]
        assert first == second

    def test_variants_spread_across_sites(self):
        urls = set()
        for i in range(60):
            profile = SiteProfile(domain=f"spread{i}.com", rank=i + 10,
                                  networks=["doubleclick-conversion"])
            for request in build_page(profile).requests:
                if request.network == "doubleclick-conversion":
                    urls.add(request.url.split("?")[0])
        # Five variants exist; a 60-site sample must hit several.
        assert len(urls) >= 4
