"""Unit tests for URL parsing and domain reduction."""

import pytest

from repro.web.url import (
    URLError,
    is_subdomain_of,
    is_third_party,
    parse_url,
    public_suffix,
    registered_domain,
)


class TestParseUrl:
    def test_basic(self):
        url = parse_url("http://www.example.com/path?a=1#frag")
        assert url.scheme == "http"
        assert url.host == "www.example.com"
        assert url.path == "/path"
        assert url.query == "a=1"
        assert url.fragment == "frag"

    def test_https(self):
        assert parse_url("https://e.com/").scheme == "https"

    def test_default_scheme_for_bare_host(self):
        assert parse_url("example.com/x").scheme == "http"

    def test_scheme_relative(self):
        assert parse_url("//cdn.example.com/lib.js").host == \
            "cdn.example.com"

    def test_port(self):
        url = parse_url("http://e.com:8080/")
        assert url.port == 8080
        assert url.origin == "http://e.com:8080"

    def test_host_lowercased(self):
        assert parse_url("http://WWW.Example.COM/").host == \
            "www.example.com"

    def test_empty_path_normalised(self):
        assert parse_url("http://e.com").path == "/"

    def test_full_path_includes_query(self):
        url = parse_url("http://e.com/a?b=1")
        assert url.full_path == "/a?b=1"

    def test_str_round_trip(self):
        text = "http://e.com/a?b=1#c"
        assert str(parse_url(text)) == text

    def test_registered_domain_property(self):
        assert parse_url("http://a.b.example.co.uk/").registered_domain \
            == "example.co.uk"

    @pytest.mark.parametrize("bad", [
        "", "   ", "http://", "http:///path", "ftp2://x.com/",
        "http://e.com:notaport/", "http://e.com:99999/",
        "http://bad host.com/", "http://..com/",
    ])
    def test_invalid_urls_rejected(self, bad):
        with pytest.raises(URLError):
            parse_url(bad)


class TestPublicSuffix:
    @pytest.mark.parametrize("host,suffix", [
        ("example.com", "com"),
        ("bbc.co.uk", "co.uk"),
        ("a.b.example.com.au", "com.au"),
        ("localhost", "localhost"),
        ("google.de", "de"),
        ("google.co.zz", "co.zz"),   # generic co.XX rule
        ("example.edu.xy", "edu.xy"),
    ])
    def test_suffixes(self, host, suffix):
        assert public_suffix(host) == suffix


class TestRegisteredDomain:
    @pytest.mark.parametrize("host,expected", [
        ("maps.google.com", "google.com"),
        ("google.com", "google.com"),
        ("news.bbc.co.uk", "bbc.co.uk"),
        ("cars.about.com", "about.com"),
        ("a.b.c.example.net", "example.net"),
        ("com", "com"),                      # a bare suffix
        ("google.co.uk", "google.co.uk"),
        ("www.google.co.zz", "google.co.zz"),
    ])
    def test_reduction(self, host, expected):
        assert registered_domain(host) == expected

    def test_case_insensitive(self):
        assert registered_domain("WWW.Example.COM") == "example.com"


class TestSubdomain:
    def test_equal_hosts(self):
        assert is_subdomain_of("a.com", "a.com")

    def test_subdomain(self):
        assert is_subdomain_of("x.a.com", "a.com")

    def test_not_suffix_trick(self):
        assert not is_subdomain_of("nota.com", "a.com")

    def test_parent_is_not_subdomain_of_child(self):
        assert not is_subdomain_of("a.com", "x.a.com")


class TestThirdParty:
    def test_same_host_first_party(self):
        assert not is_third_party("e.com", "e.com")

    def test_subdomain_first_party(self):
        assert not is_third_party("static.e.com", "www.e.com")

    def test_cross_site_third_party(self):
        assert is_third_party("adzerk.net", "reddit.com")

    def test_cctld_variants_are_third_party(self):
        assert is_third_party("google.co.uk", "google.de")
