"""Unit tests for the survey crawler."""

from repro.filters.engine import AdblockEngine
from repro.filters.filterlist import parse_filter_list
from repro.web.crawler import Crawler, CrawlTarget, crawl
from repro.web.sites import SiteProfile


def engine_with(filters: str) -> AdblockEngine:
    engine = AdblockEngine()
    engine.subscribe(parse_filter_list(filters, name="easylist"))
    return engine


TARGETS = [
    CrawlTarget(domain="reddit.com", rank=31, group_index=0),
    CrawlTarget(domain="wikipedia.org", rank=7, group_index=0),
    CrawlTarget(domain="randomsite-abc.com", rank=70_123, group_index=2),
]


class TestCrawl:
    def test_one_record_per_target(self):
        records = crawl(engine_with("||adzerk.net^"), TARGETS)
        assert [r.domain for r in records] == [t.domain for t in TARGETS]

    def test_ranks_carried_through(self):
        records = crawl(engine_with("||adzerk.net^"), TARGETS)
        assert records[0].rank == 31

    def test_record_metrics(self):
        records = crawl(engine_with("||adzerk.net^$third-party"), TARGETS)
        reddit = records[0]
        assert reddit.total_matches >= 1
        assert reddit.any_activation
        wikipedia = records[1]
        assert not wikipedia.any_activation

    def test_whitelist_matches_empty_without_whitelist(self):
        records = crawl(engine_with("||adzerk.net^"), TARGETS)
        assert all(r.whitelist_matches == 0 for r in records)

    def test_custom_profile_factory(self):
        def factory(target: CrawlTarget) -> SiteProfile:
            return SiteProfile(domain=target.domain, rank=target.rank,
                               networks=["adzerk"])

        crawler = Crawler(engine_with("||adzerk.net^$third-party"),
                          profile_factory=factory)
        records = crawler.survey(TARGETS)
        assert all(r.total_matches >= 1 for r in records)

    def test_deterministic_across_runs(self):
        first = crawl(engine_with("||adzerk.net^"), TARGETS)
        second = crawl(engine_with("||adzerk.net^"), TARGETS)
        assert [r.total_matches for r in first] == \
            [r.total_matches for r in second]

    def test_group_index_influences_profile(self):
        deep_targets = [
            CrawlTarget(domain=f"deep{i}.com", rank=500_000 + i,
                        group_index=3)
            for i in range(50)
        ]
        top_targets = [
            CrawlTarget(domain=f"deep{i}.com", rank=500_000 + i,
                        group_index=0)
            for i in range(50)
        ]
        deep = crawl(engine_with("||doubleclick.net^"), deep_targets)
        top = crawl(engine_with("||doubleclick.net^"), top_targets)
        assert sum(len(r.profile.networks) for r in top) >= \
            sum(len(r.profile.networks) for r in deep)
