"""Unit tests for the survey crawler."""

import random

import pytest

from repro.filters.engine import AdblockEngine
from repro.filters.filterlist import parse_filter_list
from repro.web.crawler import (
    Crawler,
    CrawlStatus,
    CrawlTarget,
    crawl,
    crawl_health,
)
from repro.web.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.web.resilience import RetryPolicy
from repro.web.sites import SiteProfile


def engine_with(filters: str) -> AdblockEngine:
    engine = AdblockEngine()
    engine.subscribe(parse_filter_list(filters, name="easylist"))
    return engine


TARGETS = [
    CrawlTarget(domain="reddit.com", rank=31, group_index=0),
    CrawlTarget(domain="wikipedia.org", rank=7, group_index=0),
    CrawlTarget(domain="randomsite-abc.com", rank=70_123, group_index=2),
]


class TestCrawl:
    def test_one_record_per_target(self):
        records = crawl(engine_with("||adzerk.net^"), TARGETS)
        assert [r.domain for r in records] == [t.domain for t in TARGETS]

    def test_ranks_carried_through(self):
        records = crawl(engine_with("||adzerk.net^"), TARGETS)
        assert records[0].rank == 31

    def test_record_metrics(self):
        records = crawl(engine_with("||adzerk.net^$third-party"), TARGETS)
        reddit = records[0]
        assert reddit.total_matches >= 1
        assert reddit.any_activation
        wikipedia = records[1]
        assert not wikipedia.any_activation

    def test_whitelist_matches_empty_without_whitelist(self):
        records = crawl(engine_with("||adzerk.net^"), TARGETS)
        assert all(r.whitelist_matches == 0 for r in records)

    def test_custom_profile_factory(self):
        def factory(target: CrawlTarget) -> SiteProfile:
            return SiteProfile(domain=target.domain, rank=target.rank,
                               networks=["adzerk"])

        crawler = Crawler(engine_with("||adzerk.net^$third-party"),
                          profile_factory=factory)
        records = crawler.survey_records(TARGETS)
        assert all(r.total_matches >= 1 for r in records)

    def test_deterministic_across_runs(self):
        first = crawl(engine_with("||adzerk.net^"), TARGETS)
        second = crawl(engine_with("||adzerk.net^"), TARGETS)
        assert [r.total_matches for r in first] == \
            [r.total_matches for r in second]

    def test_survey_outcomes_clean_run(self):
        crawler = Crawler(engine_with("||adzerk.net^"))
        outcomes = crawler.survey(TARGETS)
        assert all(o.status is CrawlStatus.SUCCESS for o in outcomes)
        assert all(o.attempts == 1 for o in outcomes)
        assert all(o.record is not None for o in outcomes)
        assert all(o.error_class is None for o in outcomes)

    def test_group_index_influences_profile(self):
        deep_targets = [
            CrawlTarget(domain=f"deep{i}.com", rank=500_000 + i,
                        group_index=3)
            for i in range(50)
        ]
        top_targets = [
            CrawlTarget(domain=f"deep{i}.com", rank=500_000 + i,
                        group_index=0)
            for i in range(50)
        ]
        deep = crawl(engine_with("||doubleclick.net^"), deep_targets)
        top = crawl(engine_with("||doubleclick.net^"), top_targets)
        assert sum(len(r.profile.networks) for r in top) >= \
            sum(len(r.profile.networks) for r in deep)


class TestTargetValidation:
    """Satellite: malformed targets must fail loudly, not crawl garbage."""

    def test_empty_domain_rejected(self):
        crawler = Crawler(engine_with("||adzerk.net^"))
        with pytest.raises(ValueError, match="empty domain"):
            crawler.survey([CrawlTarget(domain="", rank=1)])

    def test_whitespace_domain_rejected(self):
        crawler = Crawler(engine_with("||adzerk.net^"))
        with pytest.raises(ValueError, match="empty domain"):
            crawler.survey([CrawlTarget(domain="   ", rank=1)])

    def test_padded_domain_rejected(self):
        crawler = Crawler(engine_with("||adzerk.net^"))
        with pytest.raises(ValueError, match="stray whitespace"):
            crawler.survey([CrawlTarget(domain=" a.com ", rank=1)])

    def test_negative_rank_rejected(self):
        crawler = Crawler(engine_with("||adzerk.net^"))
        with pytest.raises(ValueError, match="negative rank"):
            crawler.survey([CrawlTarget(domain="a.com", rank=-5)])

    def test_validation_applies_under_fault_injection(self):
        crawler = Crawler(
            engine_with("||adzerk.net^"),
            fault_injector=FaultInjector(FaultPlan.uniform(1.0, seed=1)))
        with pytest.raises(ValueError):
            crawler.survey([CrawlTarget(domain="", rank=1)])


def dns_only_injector():
    return FaultInjector(FaultPlan(
        [FaultSpec(kind=FaultKind.DNS_FAILURE, rate=1.0)], seed=1))


def flaky_injector(failures=1):
    return FaultInjector(FaultPlan(
        [FaultSpec(kind=FaultKind.FLAKY, rate=1.0,
                   flaky_failures=failures)], seed=1))


class TestResilientSurvey:
    def test_hard_faults_become_tombstones_not_raises(self):
        crawler = Crawler(engine_with("||adzerk.net^"),
                          fault_injector=dns_only_injector())
        outcomes = crawler.survey(TARGETS)
        assert [o.domain for o in outcomes] == [t.domain for t in TARGETS]
        assert all(o.status is CrawlStatus.FAILED for o in outcomes)
        assert all(o.record is None for o in outcomes)
        assert all(o.error_class == "dns" for o in outcomes)
        assert all(o.is_tombstone for o in outcomes)

    def test_flaky_targets_degrade_but_succeed(self):
        crawler = Crawler(engine_with("||adzerk.net^"),
                          fault_injector=flaky_injector(failures=1))
        outcomes = crawler.survey(TARGETS)
        assert all(o.status is CrawlStatus.DEGRADED for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert all(o.record is not None for o in outcomes)
        assert all(o.error_class == "connect-timeout" for o in outcomes)

    def test_flaky_beyond_retry_budget_fails(self):
        crawler = Crawler(
            engine_with("||adzerk.net^"),
            retry_policy=RetryPolicy(max_attempts=2),
            fault_injector=flaky_injector(failures=5))
        outcomes = crawler.survey(TARGETS)
        assert all(o.status is CrawlStatus.FAILED for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)

    def test_degraded_records_match_clean_run(self):
        """A recovered visit must look exactly like an unfaulted one."""
        clean = crawl(engine_with("||adzerk.net^$third-party"), TARGETS)
        crawler = Crawler(engine_with("||adzerk.net^$third-party"),
                          fault_injector=flaky_injector(failures=1))
        degraded = [o.record for o in crawler.survey(TARGETS)]
        assert [r.total_matches for r in clean] == \
            [r.total_matches for r in degraded]
        assert [r.visit.blocked_count for r in clean] == \
            [r.visit.blocked_count for r in degraded]

    def test_latency_accumulates_on_simulated_clock(self):
        crawler = Crawler(engine_with("||adzerk.net^"),
                          fault_injector=flaky_injector(failures=1))
        outcomes = crawler.survey(TARGETS)
        assert all(o.latency_ms > 0 for o in outcomes)
        assert crawler.clock.now() > 0

    def test_crawl_health_summary(self):
        crawler = Crawler(engine_with("||adzerk.net^"),
                          fault_injector=dns_only_injector())
        health = crawl_health(crawler.survey(TARGETS))
        assert health.total == len(TARGETS)
        assert health.failed == len(TARGETS)
        assert health.failure_counts == {"dns": len(TARGETS)}
        assert health.success_fraction == 0.0

    def test_breaker_opens_for_repeat_offender(self):
        # Same registered domain hammered repeatedly with hard faults
        # trips its circuit; later targets are skipped, not retried.
        targets = [CrawlTarget(domain="dead.com", rank=i + 1)
                   for i in range(6)]
        crawler = Crawler(engine_with("||adzerk.net^"),
                          retry_policy=RetryPolicy(max_attempts=2),
                          fault_injector=dns_only_injector())
        outcomes = crawler.survey(targets)
        skipped = [o for o in outcomes if o.breaker_open]
        assert skipped, "circuit never opened"
        assert all(o.attempts == 0 for o in skipped)
        assert all(o.error_class == "circuit-open" for o in skipped)


class TestDeterminism:
    """Satellite: same seed -> identical CrawlOutcome sequences."""

    @staticmethod
    def run_once(seed):
        rng = random.Random(seed)
        injector = FaultInjector(FaultPlan.uniform(0.5, rng=rng))
        crawler = Crawler(engine_with("||adzerk.net^"),
                          fault_injector=injector, rng=rng)
        targets = [CrawlTarget(domain=f"site{i}.com", rank=i + 1,
                               group_index=i % 4)
                   for i in range(120)]
        return [(o.domain, o.status, o.error_class, o.attempts,
                 round(o.latency_ms, 9), o.breaker_open)
                for o in crawler.survey(targets)]

    def test_same_seed_identical_outcomes(self):
        assert self.run_once(7) == self.run_once(7)

    def test_different_seed_differs(self):
        assert self.run_once(7) != self.run_once(8)
