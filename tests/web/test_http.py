"""Unit tests for the simulated HTTP layer."""

import pytest

from repro.web.http import (
    CookieJar,
    DnsFailure,
    Headers,
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    TooManyRedirects,
    TransportError,
)
from repro.web.url import parse_url


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers([("X-Adblock-Key", "abc")])
        assert headers.get("x-adblock-key") == "abc"
        assert "X-ADBLOCK-KEY" in headers

    def test_set_overwrites(self):
        headers = Headers()
        headers.set("A", "1")
        headers.set("a", "2")
        assert headers.get("A") == "2"
        assert len(headers.items()) == 1

    def test_copy_is_independent(self):
        headers = Headers([("A", "1")])
        clone = headers.copy()
        clone.set("A", "2")
        assert headers.get("A") == "1"


class TestCookieJar:
    def test_scoped_by_registered_domain(self):
        jar = CookieJar()
        jar.store("www.example.com", {"session": "1"})
        assert jar.for_host("static.example.com") == {"session": "1"}
        assert jar.for_host("other.com") == {}

    def test_clear(self):
        jar = CookieJar()
        jar.store("a.com", {"x": "1"})
        jar.clear()
        assert jar.for_host("a.com") == {}


def _one_host_resolver(host, handler):
    return lambda h: handler if h == host else None


class TestHttpClient:
    def test_simple_get(self):
        def handler(request: HttpRequest) -> HttpResponse:
            assert request.user_agent.startswith("Mozilla")
            return HttpResponse(status=200, body="hello")

        client = HttpClient(_one_host_resolver("e.com", handler))
        response = client.get("http://e.com/")
        assert response.ok
        assert response.body == "hello"

    def test_unknown_host_raises(self):
        client = HttpClient(lambda host: None)
        with pytest.raises(HttpError):
            client.get("http://nowhere.invalid/")

    def test_redirect_followed_with_cookie(self):
        """The Uniregistry pattern: set-cookie + redirect, then content."""
        def handler(request: HttpRequest) -> HttpResponse:
            if "seen" not in request.cookies:
                return HttpResponse(status=302,
                                    redirect_to="http://e.com/lander",
                                    set_cookies={"seen": "1"})
            assert request.url.path == "/lander"
            return HttpResponse(status=200, body="ads")

        client = HttpClient(_one_host_resolver("e.com", handler))
        response = client.get("http://e.com/")
        assert response.ok
        assert response.body == "ads"
        assert client.jar.for_host("e.com") == {"seen": "1"}

    def test_redirect_loop_detected(self):
        def handler(request: HttpRequest) -> HttpResponse:
            return HttpResponse(status=302, redirect_to="http://e.com/")

        client = HttpClient(_one_host_resolver("e.com", handler))
        with pytest.raises(TooManyRedirects):
            client.get("http://e.com/")

    def test_cross_host_redirect(self):
        def a_handler(request):
            return HttpResponse(status=301, redirect_to="http://b.com/x")

        def b_handler(request):
            return HttpResponse(status=200, body="b")

        def resolver(host):
            return {"a.com": a_handler, "b.com": b_handler}.get(host)

        response = HttpClient(resolver).get("http://a.com/")
        assert response.body == "b"

    def test_extra_headers_sent(self):
        seen = {}

        def handler(request: HttpRequest) -> HttpResponse:
            seen["val"] = request.headers.get("X-Test")
            return HttpResponse()

        client = HttpClient(_one_host_resolver("e.com", handler))
        client.get("http://e.com/", extra_headers=[("X-Test", "1")])
        assert seen["val"] == "1"

    def test_403_not_followed(self):
        def handler(request):
            return HttpResponse(status=403, body="Forbidden")

        response = HttpClient(
            _one_host_resolver("e.com", handler)).get("http://e.com/")
        assert not response.ok
        assert response.status == 403

    def test_url_object_accepted(self):
        def handler(request):
            return HttpResponse(body="ok")

        client = HttpClient(_one_host_resolver("e.com", handler))
        assert client.get(parse_url("http://e.com/")).body == "ok"

    def test_adblock_key_header_accessor(self):
        response = HttpResponse(headers=Headers(
            [("X-Adblock-Key", "KEY_SIG")]))
        assert response.adblock_key_header == "KEY_SIG"
        assert HttpResponse().adblock_key_header is None

    def test_unknown_host_is_dns_failure(self):
        client = HttpClient(lambda host: None)
        with pytest.raises(DnsFailure) as info:
            client.get("http://nowhere.invalid/")
        assert isinstance(info.value, TransportError)
        assert info.value.error_class == "dns"


class TestRedirectHardening:
    """Satellite: capped chains, early loop detection, full-chain errors."""

    def test_self_redirect_loop_cut_short(self):
        calls = []

        def handler(request):
            calls.append(str(request.url))
            return HttpResponse(status=302, redirect_to="http://e.com/")

        client = HttpClient(_one_host_resolver("e.com", handler))
        with pytest.raises(TooManyRedirects) as info:
            client.get("http://e.com/")
        # The loop is detected on the first revisit, not after burning
        # the whole redirect budget.
        assert len(calls) == 1
        assert "redirect loop detected" in str(info.value)
        assert info.value.chain == ("http://e.com/", "http://e.com/")

    def test_cookie_setting_self_redirect_is_not_a_loop(self):
        """A self-redirect that sets new state may legally terminate."""
        def handler(request):
            if "seen" not in request.cookies:
                return HttpResponse(status=302,
                                    redirect_to="http://e.com/",
                                    set_cookies={"seen": "1"})
            return HttpResponse(status=200, body="done")

        client = HttpClient(_one_host_resolver("e.com", handler))
        assert client.get("http://e.com/").body == "done"

    def test_configurable_redirect_limit(self):
        def handler(request):
            n = int(request.url.path.lstrip("/") or 0)
            return HttpResponse(status=302,
                                redirect_to=f"http://e.com/{n + 1}")

        client = HttpClient(_one_host_resolver("e.com", handler),
                            max_redirects=3)
        with pytest.raises(TooManyRedirects) as info:
            client.get("http://e.com/0")
        message = str(info.value)
        assert "redirect limit (3) exceeded" in message
        # The message carries the full chain for post-mortems.
        for hop in ("http://e.com/0", "http://e.com/1",
                    "http://e.com/2", "http://e.com/3"):
            assert hop in message
        assert len(info.value.chain) == 5

    def test_two_hop_ping_pong_loop_detected(self):
        def handler(request):
            target = "/b" if request.url.path == "/a" else "/a"
            return HttpResponse(status=302,
                                redirect_to=f"http://e.com{target}")

        client = HttpClient(_one_host_resolver("e.com", handler))
        with pytest.raises(TooManyRedirects) as info:
            client.get("http://e.com/a")
        assert "redirect loop detected" in str(info.value)
        assert len(info.value.chain) == 3

    def test_error_class_label(self):
        assert TooManyRedirects("x").error_class == "redirect-loop"
