"""Unit tests for site profiles and page synthesis."""

from repro.web.adnetworks import NETWORK_CATALOG, network
from repro.web.sites import (
    AD_LIGHT_FRACTION,
    INERT_FRACTION,
    PINNED_PROFILES,
    build_page,
    pinned_profile,
    profile_for_domain,
)


class TestPinnedProfiles:
    def test_reddit_profile_pinned(self):
        profile = profile_for_domain("reddit.com", 31)
        assert profile is PINNED_PROFILES["reddit.com"]
        assert profile.is_whitelisted_publisher

    def test_pinned_ranks_unique(self):
        ranks = [p.rank for p in PINNED_PROFILES.values()]
        assert len(ranks) == len(set(ranks))

    def test_pinned_networks_exist_in_catalog(self):
        names = {net.name for net in NETWORK_CATALOG}
        for profile in PINNED_PROFILES.values():
            for net in profile.networks:
                assert net in names, (profile.domain, net)

    def test_survey_sites_all_pinned(self):
        from repro.perception.ads import SURVEY_SITES

        for site in SURVEY_SITES:
            assert pinned_profile(site) is not None, site

    def test_inert_pinned_sites(self):
        assert PINNED_PROFILES["wikipedia.org"].inert
        assert PINNED_PROFILES["craigslist.org"].inert


class TestGeneratedProfiles:
    def test_deterministic(self):
        a = profile_for_domain("somesite.com", 777)
        b = profile_for_domain("somesite.com", 777)
        assert a.networks == b.networks
        assert a.inert == b.inert
        assert a.ad_intensity == b.ad_intensity

    def test_non_inert_sites_never_empty(self):
        for i in range(200):
            profile = profile_for_domain(f"site{i}.com", i + 100)
            if not profile.inert:
                assert profile.networks, profile.domain

    def test_inert_fraction_near_configured(self):
        inert = sum(
            1 for i in range(2_000)
            if profile_for_domain(f"frac{i}.com", i + 10).inert)
        assert abs(inert / 2_000 - INERT_FRACTION) < 0.03

    def test_ad_light_sites_use_no_whitelisted_networks(self):
        from repro.web.adnetworks import whitelisted_networks

        whitelisted = {n.name for n in whitelisted_networks()}
        light = 0
        for i in range(1_000):
            profile = profile_for_domain(f"light{i}.net", i + 10)
            if profile.inert:
                continue
            if not (set(profile.networks) & whitelisted):
                light += 1
        assert light > 0  # the ad-light population exists

    def test_group_index_changes_rates(self):
        deployed_top = deployed_deep = 0
        for i in range(600):
            top = profile_for_domain(f"g{i}.com", i + 1, group_index=0)
            deep = profile_for_domain(f"h{i}.com", i + 1, group_index=3)
            deployed_top += len(top.networks)
            deployed_deep += len(deep.networks)
        assert deployed_top > deployed_deep


class TestBuildPage:
    def test_reddit_page_requests(self):
        page = build_page(PINNED_PROFILES["reddit.com"])
        urls = [r.url for r in page.requests]
        assert any("adzerk.net" in u for u in urls)
        assert any("doubleclick" in u for u in urls)

    def test_reddit_ad_elements(self):
        page = build_page(PINNED_PROFILES["reddit.com"])
        ids = {el.element_id for el in page.document.ad_elements()}
        assert "ad_main" in ids
        assert "siteTable_organic" in ids

    def test_inert_page_has_no_filterable_requests(self):
        page = build_page(PINNED_PROFILES["wikipedia.org"])
        assert page.requests == []
        assert page.document.ad_elements() == []

    def test_benign_resources_always_present(self):
        page = build_page(profile_for_domain("anysite.org", 123))
        if not page.profile.inert:
            urls = [r.url for r in page.requests]
            assert any(u.endswith("main.css") for u in urls)

    def test_cookie_sensitivity_increases_ads(self):
        ask = PINNED_PROFILES["ask.com"]
        fresh = build_page(ask, has_cookies=False)
        returning = build_page(ask, has_cookies=True)
        assert len(fresh.requests) >= len(returning.requests)

    def test_adblock_detection_swaps_stack(self):
        imgur = PINNED_PROFILES["imgur.com"]
        normal = build_page(imgur, adblock_visible=False)
        detected = build_page(imgur, adblock_visible=True)
        assert len(detected.requests) <= len(normal.requests)

    def test_repeat_counts_scale_with_intensity(self):
        toyota = build_page(PINNED_PROFILES["toyota.com"])
        # 8 networks at intensity 8.6 -> dozens of ad requests.
        ad_requests = [r for r in toyota.requests if r.network]
        assert len(ad_requests) >= 50

    def test_deterministic_page(self):
        profile = profile_for_domain("stable.com", 50)
        a = build_page(profile)
        b = build_page(profile)
        assert [r.url for r in a.requests] == [r.url for r in b.requests]


class TestCatalogIntegrity:
    def test_unique_network_names(self):
        names = [n.name for n in NETWORK_CATALOG]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert network("gstatic").name == "gstatic"

    def test_whitelist_filters_parse(self):
        from repro.filters.parser import InvalidFilter, parse_filter

        for net in NETWORK_CATALOG:
            for text in net.whitelist_filters + net.blocking_filters:
                assert not isinstance(parse_filter(text), InvalidFilter), \
                    text

    def test_rate_for_group_scales_down(self):
        net = network("doubleclick-conversion")
        assert net.rate_for_group(0) >= net.rate_for_group(1) >= \
            net.rate_for_group(2) >= net.rate_for_group(3)

    def test_figure8_outlier_peaks_in_deep_stratum(self):
        net = network("google-analytics-conversion")
        assert net.rate_for_group(3) > net.rate_for_group(0)
