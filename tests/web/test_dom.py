"""Unit tests for the minimal DOM."""

from repro.web.dom import Document, Element


class TestElement:
    def test_classes_parsed_from_attribute(self):
        el = Element(tag="div", attributes={"class": "a b  c"})
        assert el.classes == frozenset({"a", "b", "c"})

    def test_no_class_attribute(self):
        assert Element(tag="div").classes == frozenset()

    def test_get_with_default(self):
        el = Element(tag="div", attributes={"id": "x"})
        assert el.get("id") == "x"
        assert el.get("missing") is None
        assert el.get("missing", "d") == "d"

    def test_append_sets_parent(self):
        parent = Element(tag="div")
        child = parent.append(Element(tag="span"))
        assert child.parent is parent
        assert parent.children == [child]

    def test_new_child_attribute_normalisation(self):
        parent = Element(tag="div")
        child = parent.new_child("img", class_="ad", data_slot="top")
        assert child.attributes == {"class": "ad", "data-slot": "top"}

    def test_iter_depth_first(self):
        root = Element(tag="a")
        b = root.new_child("b")
        c = b.new_child("c")
        d = root.new_child("d")
        assert list(root.iter()) == [root, b, c, d]

    def test_find_by_id(self):
        root = Element(tag="div")
        target = root.new_child("span", id="x")
        assert root.find_by_id("x") is target
        assert root.find_by_id("y") is None

    def test_find_by_class_and_tag(self):
        root = Element(tag="div")
        a = root.new_child("img", class_="ad big")
        root.new_child("img", class_="content")
        assert root.find_by_class("ad") == [a]
        assert len(root.find_by_tag("img")) == 2

    def test_identity_equality(self):
        a = Element(tag="div")
        b = Element(tag="div")
        assert a != b
        assert a == a


class TestDocument:
    def test_head_and_body_created(self):
        doc = Document(url="http://x.com/")
        assert doc.head.tag == "head"
        assert doc.body.tag == "body"

    def test_all_elements_includes_root(self):
        doc = Document(url="http://x.com/")
        doc.body.new_child("div")
        elements = doc.all_elements()
        assert doc.root in elements
        assert len(elements) == 4  # html, head, body, div

    def test_ad_elements_ground_truth(self):
        doc = Document(url="http://x.com/")
        ad = doc.body.new_child("div")
        ad.ad_label = "test-ad"
        doc.body.new_child("div")
        assert doc.ad_elements() == [ad]
