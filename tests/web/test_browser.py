"""Unit tests for the instrumented browser."""

from repro.filters.engine import AdblockEngine
from repro.filters.filterlist import parse_filter_list
from repro.web.browser import InstrumentedBrowser
from repro.web.sites import PINNED_PROFILES, SiteProfile


def make_engine() -> AdblockEngine:
    engine = AdblockEngine()
    engine.subscribe(parse_filter_list(
        "||adzerk.net^$third-party\n"
        "||doubleclick.net^$third-party\n"
        "##.banner-ad\n",
        name="easylist"))
    engine.subscribe(parse_filter_list(
        "@@||adzerk.net/ads.html$subdocument,domain=reddit.com\n"
        "@@||stats.g.doubleclick.net^$script,image\n"
        "reddit.com#@##ad_main\n",
        name="whitelist"))
    return engine


class TestVisit:
    def test_reddit_visit_records_activations(self):
        browser = InstrumentedBrowser(make_engine())
        visit = browser.visit(PINNED_PROFILES["reddit.com"])
        assert visit.domain == "reddit.com"
        assert visit.activations
        assert visit.whitelist_activations

    def test_exception_allows_adzerk_frame(self):
        browser = InstrumentedBrowser(make_engine())
        visit = browser.visit(PINNED_PROFILES["reddit.com"])
        allowed_urls = {
            a.target for a in visit.whitelist_activations
            if a.kind == "request"
        }
        assert any("adzerk.net" in u for u in allowed_urls)

    def test_activation_counts_consistent(self):
        browser = InstrumentedBrowser(make_engine())
        visit = browser.visit(PINNED_PROFILES["reddit.com"])
        assert len(visit.distinct_filters) <= len(visit.activations)
        assert visit.allowed_count + visit.blocked_count <= \
            len(visit.decisions)

    def test_engine_activations_cleared_between_visits(self):
        engine = make_engine()
        browser = InstrumentedBrowser(engine)
        browser.visit(PINNED_PROFILES["reddit.com"])
        assert engine.activations == []

    def test_visits_are_isolated(self):
        browser = InstrumentedBrowser(make_engine())
        first = browser.visit(PINNED_PROFILES["reddit.com"])
        second = browser.visit(PINNED_PROFILES["wikipedia.org"])
        assert second.activations == []
        assert first.activations  # untouched by the second visit

    def test_cookie_state_persists_across_visits(self):
        browser = InstrumentedBrowser(make_engine())
        ask = PINNED_PROFILES["ask.com"]
        first = browser.visit(ask)
        second = browser.visit(ask)
        # First (cookie-less) visit sees at least as many requests.
        assert len(first.decisions) >= len(second.decisions)

    def test_reset_state_restores_first_visit_behaviour(self):
        browser = InstrumentedBrowser(make_engine())
        ask = PINNED_PROFILES["ask.com"]
        first = browser.visit(ask)
        browser.visit(ask)
        browser.reset_state()
        again = browser.visit(ask)
        assert len(again.decisions) == len(first.decisions)

    def test_sitekey_provider_consulted(self):
        engine = AdblockEngine()
        engine.subscribe(parse_filter_list("||ads.net^", name="easylist"))
        engine.subscribe(parse_filter_list("@@$sitekey=K1,document",
                                           name="whitelist"))
        profile = SiteProfile(domain="parked.com", rank=999_999,
                              networks=["popunder"])
        browser = InstrumentedBrowser(
            engine, sitekey_provider=lambda domain: "K1")
        visit = browser.visit(profile)
        assert visit.blocked_count == 0
        doc_grants = [a for a in visit.activations if a.kind == "document"]
        assert doc_grants
