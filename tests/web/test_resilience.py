"""Unit tests for retries, deadlines, circuit breakers, ResilientClient.

Includes the Section 4.2.3 countermeasure paths under injected faults:
Uniregistry's cookie-redirect dance and ParkingCrew's anti-curl 403
must survive flaky-then-succeed injection and still yield (or properly
withhold) the sitekey header.
"""

import random

import pytest

from repro.sitekey.parking import PARKING_SERVICES, ParkedDomainServer
from repro.sitekey.protocol import verify_presented_key
from repro.web.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.web.http import (
    CURL_USER_AGENT,
    ConnectTimeout,
    DnsFailure,
    HttpClient,
    HttpResponse,
    TooManyRedirects,
)
from repro.web.resilience import (
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
    Deadline,
    OutcomeStatus,
    ResilientClient,
    RetryPolicy,
    SimulatedClock,
    classify_error,
    execute_with_policy,
)


def service(name: str):
    return next(s for s in PARKING_SERVICES if s.name == name)


class TestSimulatedClock:
    def test_advance_and_sleep(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.sleep(0.5)
        assert clock.now() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)


class TestRetryPolicy:
    def test_exponential_backoff_without_jitter(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=2.0, max_delay=8.0)
        assert [policy.backoff_delay(n) for n in (1, 2, 3, 4, 5, 6)] == \
            [0.5, 1.0, 2.0, 4.0, 8.0, 8.0]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        rng = random.Random(4)
        delays = [policy.backoff_delay(1, rng) for _ in range(200)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert len(set(delays)) > 1

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy()
        a = [policy.backoff_delay(n, random.Random(7)) for n in (1, 2, 3)]
        b = [policy.backoff_delay(n, random.Random(7)) for n in (1, 2, 3)]
        assert a == b

    def test_retryable_predicate(self):
        policy = RetryPolicy()
        assert policy.is_retryable("dns")
        assert policy.is_retryable("server-error")
        assert not policy.is_retryable("redirect-loop")
        assert not policy.is_retryable("invalid-target")

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestClassifyError:
    def test_taxonomy_labels(self):
        assert classify_error(DnsFailure("x")) == "dns"
        assert classify_error(ConnectTimeout("x")) == "connect-timeout"
        assert classify_error(TooManyRedirects("x")) == "redirect-loop"

    def test_fallbacks(self):
        assert classify_error(ValueError("bad")) == "invalid-target"
        assert classify_error(KeyError("?")) == "unexpected"


class TestDeadline:
    def test_expiry_tracks_clock(self):
        clock = SimulatedClock()
        deadline = Deadline.after(clock, 10.0)
        assert not deadline.expired
        assert deadline.remaining() == 10.0
        clock.advance(10.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=30.0)
        for t in range(3):
            assert breaker.allow(float(t))
            breaker.record_failure(float(t))
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(3.0)
        assert breaker.open_count == 1

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(10.0)
        assert breaker.allow(31.0)          # half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(31.0)      # only one probe at a time
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(31.0)

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0)
        breaker.record_failure(0.0)
        assert breaker.allow(31.0)
        breaker.record_failure(31.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_count == 2
        assert not breaker.allow(32.0)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.CLOSED

    def test_registry_shares_by_registered_domain(self):
        registry = BreakerRegistry()
        assert registry.get("www.example.com") is registry.get("example.com")
        assert registry.get("other.com") is not registry.get("example.com")

    def test_long_lived_breaker_full_cycle_across_requests(self):
        """One breaker reused across sequential requests (the serving-

        daemon pattern: a breaker lives as long as the process) walks
        the whole closed → open → half-open → closed cycle on a shared
        clock, and keeps working on the next incident.
        """
        clock = SimulatedClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=30.0)

        def attempt(succeeds: bool) -> str:
            if not breaker.allow(clock.now()):
                return "refused"
            if succeeds:
                breaker.record_success()
                return "ok"
            breaker.record_failure(clock.now())
            return "failed"

        # Healthy traffic: stays CLOSED.
        for _ in range(5):
            assert attempt(True) == "ok"
            clock.advance(1.0)
        assert breaker.state is BreakerState.CLOSED

        # An incident: two failures trip it OPEN; requests during the
        # cooldown are refused without touching the backend.
        assert attempt(False) == "failed"
        assert attempt(False) == "failed"
        assert breaker.state is BreakerState.OPEN
        clock.advance(10.0)
        assert attempt(True) == "refused"

        # Cooldown elapses: exactly one HALF_OPEN probe goes through,
        # and its success closes the breaker for everyone.
        clock.advance(30.0)
        assert breaker.allow(clock.now())
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(clock.now())   # concurrent request held
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

        # The same instance handles the *next* incident identically —
        # no stale failure streak left behind by the first cycle.
        for _ in range(5):
            assert attempt(True) == "ok"
            clock.advance(1.0)
        assert attempt(False) == "failed"
        assert attempt(False) == "failed"
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_count == 2
        clock.advance(31.0)
        assert attempt(True) == "ok"            # half-open probe succeeds
        assert breaker.state is BreakerState.CLOSED


class TestExecuteWithPolicy:
    def test_first_attempt_success(self):
        out = execute_with_policy(lambda n: "ok", policy=RetryPolicy(),
                                  clock=SimulatedClock())
        assert (out.value, out.status, out.attempts, out.error_class) == \
            ("ok", OutcomeStatus.SUCCESS, 1, None)

    def test_degraded_after_retries_keeps_recovered_class(self):
        def attempt(n):
            if n < 3:
                raise ConnectTimeout("flaky")
            return "ok"

        clock = SimulatedClock()
        out = execute_with_policy(attempt, policy=RetryPolicy(),
                                  clock=clock)
        assert out.status is OutcomeStatus.DEGRADED
        assert out.attempts == 3
        assert out.error_class == "connect-timeout"
        assert clock.now() > 0.0, "backoff must burn simulated time"

    def test_non_retryable_fails_fast(self):
        def attempt(n):
            raise TooManyRedirects("loop")

        out = execute_with_policy(attempt, policy=RetryPolicy(),
                                  clock=SimulatedClock())
        assert out.status is OutcomeStatus.FAILED
        assert out.attempts == 1
        assert out.error_class == "redirect-loop"

    def test_exhausted_attempts_fail(self):
        calls = []

        def attempt(n):
            calls.append(n)
            raise DnsFailure("gone")

        out = execute_with_policy(
            attempt, policy=RetryPolicy(max_attempts=4),
            clock=SimulatedClock())
        assert out.status is OutcomeStatus.FAILED
        assert calls == [1, 2, 3, 4]

    def test_open_breaker_short_circuits(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60.0)
        breaker.record_failure(0.0)
        out = execute_with_policy(
            lambda n: "never", policy=RetryPolicy(),
            clock=SimulatedClock(), breaker=breaker)
        assert out.breaker_open
        assert out.status is OutcomeStatus.FAILED
        assert out.attempts == 0
        assert out.error_class == "circuit-open"

    def test_deadline_stops_retries(self):
        clock = SimulatedClock()

        def attempt(n):
            clock.advance(5.0)
            raise ConnectTimeout("slow death")

        out = execute_with_policy(
            attempt, policy=RetryPolicy(max_attempts=10),
            clock=clock, deadline=Deadline.after(clock, 4.0))
        assert out.status is OutcomeStatus.FAILED
        assert out.error_class == "deadline-exceeded"
        assert out.attempts == 1


def one_host_client(host, handler, **client_kwargs):
    return HttpClient(lambda h: handler if h == host else None,
                      **client_kwargs)


class TestResilientClient:
    def test_clean_fetch_is_success(self):
        client = ResilientClient(one_host_client(
            "e.com", lambda r: HttpResponse(body="hello")))
        outcome = client.get("http://e.com/")
        assert outcome.ok
        assert outcome.status is OutcomeStatus.SUCCESS
        assert outcome.attempts == 1

    def test_5xx_retried_then_degraded(self):
        calls = []

        def handler(request):
            calls.append(1)
            if len(calls) < 2:
                return HttpResponse(status=503, body="down")
            return HttpResponse(body="up")

        client = ResilientClient(one_host_client("e.com", handler))
        outcome = client.get("http://e.com/")
        assert outcome.status is OutcomeStatus.DEGRADED
        assert outcome.error_class == "server-error"
        assert outcome.response.body == "up"

    def test_permanent_5xx_becomes_tombstone(self):
        client = ResilientClient(
            one_host_client("e.com",
                            lambda r: HttpResponse(status=500)),
            policy=RetryPolicy(max_attempts=3))
        outcome = client.get("http://e.com/")
        assert outcome.status is OutcomeStatus.FAILED
        assert outcome.response is None
        assert outcome.attempts == 3

    def test_4xx_is_returned_not_retried(self):
        calls = []

        def handler(request):
            calls.append(1)
            return HttpResponse(status=403, body="Forbidden")

        client = ResilientClient(one_host_client("e.com", handler))
        outcome = client.get("http://e.com/")
        assert outcome.status is OutcomeStatus.SUCCESS
        assert not outcome.ok
        assert outcome.response.status == 403
        assert calls == [1]

    def test_unresolvable_host_is_tombstone_not_raise(self):
        client = ResilientClient(HttpClient(lambda host: None))
        outcome = client.get("http://nowhere.invalid/")
        assert outcome.status is OutcomeStatus.FAILED
        assert outcome.error_class == "dns"

    def test_breaker_trips_across_fetches(self):
        client = ResilientClient(
            HttpClient(lambda host: None),
            policy=RetryPolicy(max_attempts=2),
            breakers=BreakerRegistry(failure_threshold=3, cooldown=1e9))
        for _ in range(2):
            assert client.get("http://dead.com/").attempts == 2
        tomb = client.get("http://dead.com/")
        assert tomb.breaker_open
        assert tomb.error_class == "circuit-open"


class TestParkingCountermeasuresUnderFaults:
    """Satellite: Section 4.2.3 paths must survive injected flakiness."""

    def flaky_injector(self, failures=1):
        return FaultInjector(FaultPlan(
            [FaultSpec(kind=FaultKind.FLAKY, rate=1.0,
                       flaky_failures=failures)], seed=3))

    def resilient(self, domain, server, injector, **client_kwargs):
        resolver = injector.wrap_resolver(
            lambda h: server.handler() if h == domain else None)
        return ResilientClient(HttpClient(resolver, **client_kwargs),
                               clock=injector.clock,
                               rng=random.Random(3))

    def test_uniregistry_cookie_dance_survives_flakiness(self):
        uniregistry = service("Uniregistry")
        server = ParkedDomainServer(uniregistry, key_bits=128)
        injector = self.flaky_injector(failures=2)
        client = self.resilient("parked-uni.com", server, injector,
                                max_redirects=5)
        outcome = client.get("http://parked-uni.com/")
        assert outcome.status is OutcomeStatus.DEGRADED
        assert outcome.attempts == 3
        header = outcome.response.adblock_key_header
        assert header is not None
        verification = verify_presented_key(
            header, "/lander", "parked-uni.com",
            client.client.user_agent)
        assert verification.valid

    def test_uniregistry_clean_run_still_one_attempt(self):
        uniregistry = service("Uniregistry")
        server = ParkedDomainServer(uniregistry, key_bits=128)
        injector = FaultInjector(FaultPlan.uniform(0.0, seed=0))
        client = self.resilient("parked-uni.com", server, injector)
        outcome = client.get("http://parked-uni.com/")
        assert outcome.status is OutcomeStatus.SUCCESS
        assert outcome.response.adblock_key_header is not None

    def test_parkingcrew_403_for_curl_is_not_retried(self):
        crew = service("ParkingCrew")
        server = ParkedDomainServer(crew, key_bits=128)
        injector = FaultInjector(FaultPlan.uniform(0.0, seed=0))
        client = self.resilient("parked-crew.com", server, injector,
                                user_agent=CURL_USER_AGENT)
        outcome = client.get("http://parked-crew.com/")
        # The 403 is the server's deliberate answer — no retry, no key.
        assert outcome.attempts == 1
        assert outcome.response.status == 403
        assert outcome.response.adblock_key_header is None

    def test_parkingcrew_flaky_browser_ua_yields_sitekey(self):
        crew = service("ParkingCrew")
        server = ParkedDomainServer(crew, key_bits=128)
        injector = self.flaky_injector(failures=1)
        client = self.resilient("parked-crew.com", server, injector)
        outcome = client.get("http://parked-crew.com/")
        assert outcome.status is OutcomeStatus.DEGRADED
        header = outcome.response.adblock_key_header
        assert header is not None
        assert verify_presented_key(
            header, "/", "parked-crew.com",
            client.client.user_agent).valid
