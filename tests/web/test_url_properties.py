"""Property-based tests for the URL substrate (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.web.url import (
    URLError,
    is_subdomain_of,
    is_third_party,
    parse_url,
    public_suffix,
    registered_domain,
)

_LABEL = st.text(alphabet=string.ascii_lowercase + string.digits,
                 min_size=1, max_size=10)
_HOST = st.lists(_LABEL, min_size=1, max_size=5).map(".".join)
_PATH = st.text(
    alphabet=string.ascii_letters + string.digits + "/-_.",
    max_size=30,
)


class TestParseProperties:
    @given(_HOST, _PATH)
    def test_host_round_trips(self, host, path):
        url = parse_url(f"http://{host}/{path}")
        assert url.host == host

    @given(_HOST)
    def test_str_reparse_is_identity(self, host):
        url = parse_url(f"https://{host}/a?b=1#c")
        assert parse_url(str(url)) == url

    @given(st.text(max_size=40))
    @settings(max_examples=300)
    def test_parse_raises_only_urlerror(self, text):
        try:
            parse_url(text)
        except URLError:
            pass


class TestDomainProperties:
    @given(_HOST)
    def test_registered_domain_is_suffix_of_host(self, host):
        e2ld = registered_domain(host)
        assert host == e2ld or host.endswith("." + e2ld)

    @given(_HOST)
    def test_registered_domain_idempotent(self, host):
        e2ld = registered_domain(host)
        assert registered_domain(e2ld) == e2ld

    @given(_HOST)
    def test_public_suffix_is_suffix_of_registered_domain(self, host):
        suffix = public_suffix(host)
        e2ld = registered_domain(host)
        assert e2ld == suffix or e2ld.endswith("." + suffix)

    @given(_HOST)
    def test_registered_domain_at_most_one_extra_label(self, host):
        suffix = public_suffix(host)
        e2ld = registered_domain(host)
        assert e2ld.count(".") <= suffix.count(".") + 1

    @given(_LABEL, _HOST)
    def test_subdomain_reduction_stable(self, label, host):
        # Prepending a label never changes the registered domain, unless
        # the host was itself a bare public suffix.
        if registered_domain(host) != public_suffix(host):
            assert registered_domain(f"{label}.{host}") == \
                registered_domain(host)


class TestPartyProperties:
    @given(_HOST)
    def test_never_third_party_to_self(self, host):
        assert not is_third_party(host, host)

    @given(_HOST, _HOST)
    def test_symmetry(self, a, b):
        assert is_third_party(a, b) == is_third_party(b, a)

    @given(_LABEL, _HOST)
    def test_subdomain_first_party(self, label, host):
        if registered_domain(host) != public_suffix(host):
            assert not is_third_party(f"{label}.{host}", host)

    @given(_HOST, _HOST)
    def test_subdomain_relation_implies_first_party(self, a, b):
        if is_subdomain_of(a, b):
            assert not is_third_party(a, b) or \
                registered_domain(b) == public_suffix(b)
