"""Unit tests for deterministic fault injection."""

import random

import pytest

from repro.web.faults import (
    DEFAULT_FAULT_MIX,
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.web.http import (
    ConnectTimeout,
    DnsFailure,
    HttpClient,
    HttpResponse,
    ReadTimeout,
    ServerFault,
    TooManyRedirects,
    TruncatedBody,
)
from repro.web.resilience import SimulatedClock

DOMAINS = [f"domain{i}.com" for i in range(4000)]


def single_fault_plan(kind: FaultKind, **spec_kwargs) -> FaultPlan:
    return FaultPlan([FaultSpec(kind=kind, rate=1.0, **spec_kwargs)],
                     seed=1)


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        a = FaultPlan.uniform(0.3, seed=42)
        b = FaultPlan.uniform(0.3, seed=42)
        assert [a.fault_for(d) for d in DOMAINS[:500]] == \
            [b.fault_for(d) for d in DOMAINS[:500]]

    def test_different_seeds_differ(self):
        a = FaultPlan.uniform(0.3, seed=1)
        b = FaultPlan.uniform(0.3, seed=2)
        assert [a.fault_for(d) for d in DOMAINS[:500]] != \
            [b.fault_for(d) for d in DOMAINS[:500]]

    def test_decisions_are_order_independent(self):
        plan = FaultPlan.uniform(0.3, seed=9)
        forward = [plan.fault_for(d) for d in DOMAINS[:200]]
        backward = [plan.fault_for(d) for d in reversed(DOMAINS[:200])]
        assert forward == list(reversed(backward))

    def test_uniform_rate_is_respected(self):
        plan = FaultPlan.uniform(0.2, seed=3)
        hits = sum(1 for d in DOMAINS if plan.fault_for(d) is not None)
        assert 0.15 <= hits / len(DOMAINS) <= 0.25

    def test_zero_rate_injects_nothing(self):
        plan = FaultPlan.uniform(0.0, seed=3)
        assert all(plan.fault_for(d) is None for d in DOMAINS[:300])

    def test_full_rate_faults_everything(self):
        plan = FaultPlan.uniform(1.0, seed=3)
        assert all(plan.fault_for(d) is not None for d in DOMAINS[:300])

    def test_all_kinds_appear_in_uniform_mix(self):
        plan = FaultPlan.uniform(1.0, seed=3)
        kinds = {plan.fault_for(d).kind for d in DOMAINS}
        assert kinds == {kind for kind, _ in DEFAULT_FAULT_MIX}

    def test_domain_targeted_spec(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.DNS_FAILURE, rate=1.0,
                                    domains=frozenset({"victim.com"}))],
                         seed=0)
        assert plan.fault_for("victim.com").kind is FaultKind.DNS_FAILURE
        assert plan.fault_for("bystander.com") is None

    def test_group_targeted_spec(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.READ_TIMEOUT, rate=1.0,
                                    group_index=2)], seed=0)
        assert plan.fault_for("a.com", group_index=2) is not None
        assert plan.fault_for("a.com", group_index=0) is None

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.uniform(1.5)
        with pytest.raises(ValueError):
            FaultPlan([FaultSpec(kind=FaultKind.FLAKY, rate=-0.1)])

    def test_latency_is_deterministic_and_bounded(self):
        plan = FaultPlan.uniform(0.2, seed=5)
        for domain in DOMAINS[:100]:
            latency = plan.latency_for(domain)
            assert latency == plan.latency_for(domain)
            assert 0.05 <= latency <= 0.35

    def test_plan_seeded_from_injected_rng(self):
        a = FaultPlan.uniform(0.4, rng=random.Random(11))
        b = FaultPlan.uniform(0.4, rng=random.Random(11))
        assert [a.fault_for(d) for d in DOMAINS[:200]] == \
            [b.fault_for(d) for d in DOMAINS[:200]]


class TestInjectorVisitPath:
    @pytest.mark.parametrize("kind,exc", [
        (FaultKind.DNS_FAILURE, DnsFailure),
        (FaultKind.CONNECT_TIMEOUT, ConnectTimeout),
        (FaultKind.READ_TIMEOUT, ReadTimeout),
        (FaultKind.SERVER_ERROR, ServerFault),
        (FaultKind.TRUNCATED_BODY, TruncatedBody),
        (FaultKind.REDIRECT_LOOP, TooManyRedirects),
    ])
    def test_kind_raises_taxonomy_exception(self, kind, exc):
        injector = FaultInjector(single_fault_plan(kind))
        called = []
        with pytest.raises(exc):
            injector.run("x.com", lambda: called.append(1))
        assert not called, "failing attempts must not touch the browser"

    def test_slow_response_succeeds_but_burns_time(self):
        clock = SimulatedClock()
        injector = FaultInjector(
            single_fault_plan(FaultKind.SLOW_RESPONSE, slow_factor=30.0),
            clock=clock)
        assert injector.run("x.com", lambda: "page") == "page"
        assert clock.now() > injector.plan.latency_for("x.com") * 10

    def test_flaky_fails_then_succeeds(self):
        injector = FaultInjector(
            single_fault_plan(FaultKind.FLAKY, flaky_failures=2))
        for _ in range(2):
            with pytest.raises(ConnectTimeout):
                injector.run("x.com", lambda: "page")
        assert injector.run("x.com", lambda: "page") == "page"
        # Countdown is per-domain.
        with pytest.raises(ConnectTimeout):
            injector.run("y.com", lambda: "page")

    def test_reset_restores_flaky_budget(self):
        injector = FaultInjector(
            single_fault_plan(FaultKind.FLAKY, flaky_failures=1))
        with pytest.raises(ConnectTimeout):
            injector.run("x.com", lambda: "page")
        assert injector.run("x.com", lambda: "page") == "page"
        injector.reset()
        with pytest.raises(ConnectTimeout):
            injector.run("x.com", lambda: "page")

    def test_clean_domain_passes_through(self):
        injector = FaultInjector(FaultPlan.uniform(0.0, seed=0))
        assert injector.run("x.com", lambda: 42) == 42


class TestInjectorHttpPath:
    @staticmethod
    def ok_handler(request):
        return HttpResponse(status=200, body="fine")

    def test_server_error_becomes_503(self):
        injector = FaultInjector(single_fault_plan(FaultKind.SERVER_ERROR))
        handler = injector.wrap_handler(self.ok_handler, "x.com")
        client = HttpClient(lambda h: handler if h == "x.com" else None)
        response = client.get("http://x.com/")
        assert response.status == 503

    def test_redirect_loop_detected_by_client(self):
        injector = FaultInjector(single_fault_plan(FaultKind.REDIRECT_LOOP))
        handler = injector.wrap_handler(self.ok_handler, "x.com")
        client = HttpClient(lambda h: handler if h == "x.com" else None)
        with pytest.raises(TooManyRedirects):
            client.get("http://x.com/")

    def test_dns_failure_raises_through_client(self):
        injector = FaultInjector(single_fault_plan(FaultKind.DNS_FAILURE))
        handler = injector.wrap_handler(self.ok_handler, "x.com")
        client = HttpClient(lambda h: handler if h == "x.com" else None)
        with pytest.raises(DnsFailure):
            client.get("http://x.com/")

    def test_wrap_resolver_preserves_unknown_hosts(self):
        injector = FaultInjector(FaultPlan.uniform(0.0, seed=0))
        resolver = injector.wrap_resolver(
            lambda h: self.ok_handler if h == "known.com" else None)
        assert resolver("unknown.com") is None
        assert resolver("known.com") is not None

    def test_flaky_http_then_succeeds(self):
        injector = FaultInjector(
            single_fault_plan(FaultKind.FLAKY, flaky_failures=1))
        resolver = injector.wrap_resolver(
            lambda h: self.ok_handler if h == "x.com" else None)
        client = HttpClient(resolver)
        with pytest.raises(ConnectTimeout):
            client.get("http://x.com/")
        assert client.get("http://x.com/").body == "fine"


class TestFaultDataclasses:
    def test_fault_is_frozen(self):
        fault = Fault(kind=FaultKind.FLAKY)
        with pytest.raises(Exception):
            fault.kind = FaultKind.DNS_FAILURE

    def test_spec_matching(self):
        spec = FaultSpec(kind=FaultKind.FLAKY, rate=0.5,
                         domains=frozenset({"a.com"}), group_index=1)
        assert spec.matches("a.com", 1)
        assert not spec.matches("a.com", 0)
        assert not spec.matches("b.com", 1)
