"""Unit tests for weak-key factoring and the Figure 5 bypass."""

import pytest

from repro.filters.engine import AdblockEngine
from repro.filters.filterlist import parse_filter_list
from repro.sitekey.der import public_key_to_base64
from repro.sitekey.factoring import (
    FactoringError,
    factor_semiprime,
    factor_sitekey,
    pollard_p_minus_1,
    pollard_rho,
    recover_private_key,
    run_bypass_demo,
)
from repro.sitekey.rsa import RsaPublicKey, generate_keypair, sign, verify


class TestPollardRho:
    def test_factors_small_semiprime(self):
        factor = pollard_rho(10_403)  # 101 * 103
        assert factor in (101, 103)

    def test_factors_64_bit_semiprime(self):
        key = generate_keypair(64, seed=1)
        factor = pollard_rho(key.n)
        assert factor in (key.p, key.q)

    def test_even_number(self):
        assert pollard_rho(2 * 982_451_653) == 2


class TestPollardPMinus1:
    def test_smooth_factor_found(self):
        # p = 2^4 * 3^2 * 5 * 7 + 1 = 5041? construct a smooth prime.
        from repro.sitekey.rsa import is_probable_prime

        p = 9_241  # p-1 = 9240 = 2^3*3*5*7*11 (smooth)
        assert is_probable_prime(p)
        q = 10_007
        factor = pollard_p_minus_1(p * q)
        assert factor in (p, q)


class TestFactorSemiprime:
    def test_recovers_both_factors(self):
        key = generate_keypair(64, seed=3)
        p, q = factor_semiprime(key.n)
        assert {p, q} == {key.p, key.q}
        assert p <= q

    def test_prime_input_rejected(self):
        with pytest.raises(FactoringError):
            factor_semiprime(2 ** 127 - 1)

    def test_tiny_input_rejected(self):
        with pytest.raises(FactoringError):
            factor_semiprime(3)

    def test_time_budget_respected(self):
        key = generate_keypair(256, seed=4)  # far too big for 0.1s
        with pytest.raises(FactoringError):
            factor_semiprime(key.n, time_budget=0.1)

    def test_small_factor_via_trial_division(self):
        assert factor_semiprime(3 * 1_000_003) == (3, 1_000_003)


class TestKeyRecovery:
    def test_recovered_key_equals_original(self):
        key = generate_keypair(64, seed=5)
        recovered = recover_private_key(key.public, key.p)
        assert recovered.d == key.d

    def test_recovered_key_signs_verifiably(self):
        key = generate_keypair(64, seed=6)
        recovered = recover_private_key(key.public, key.p)
        signature = sign(b"forged", recovered)
        assert verify(b"forged", signature, key.public)

    def test_wrong_factor_rejected(self):
        key = generate_keypair(64, seed=7)
        with pytest.raises(FactoringError):
            recover_private_key(key.public, 17)

    def test_factor_sitekey_records_timing(self):
        key = generate_keypair(48, seed=8)
        factored = factor_sitekey(key.public)
        assert factored.elapsed_seconds >= 0
        assert factored.p * factored.q == key.n


class TestBypassDemo:
    @pytest.fixture()
    def engine_and_key(self):
        key = generate_keypair(64, seed=0xF16)
        key_b64 = public_key_to_base64(key.public)
        engine = AdblockEngine()
        engine.subscribe(parse_filter_list(
            "||popads.net^$third-party\n"
            "||bannerfarm.net^$third-party\n"
            "||rubiconproject.com^$third-party\n"
            "||zedo.com^$third-party\n"
            "##.banner-ad\n", name="easylist"))
        engine.subscribe(parse_filter_list(
            f"@@$sitekey={key_b64},document\n", name="whitelist"))
        return engine, key

    def test_full_bypass(self, engine_and_key):
        engine, key = engine_and_key
        factored = factor_sitekey(key.public)
        demo = run_bypass_demo(engine, factored)
        assert demo.blocked_without_key == demo.test_requests
        assert demo.hidden_without_key == 1
        assert demo.blocked_with_key == 0
        assert demo.hidden_with_key == 0
        assert demo.fully_bypassed

    def test_bypass_reports_sitekey(self, engine_and_key):
        engine, key = engine_and_key
        factored = factor_sitekey(key.public)
        demo = run_bypass_demo(engine, factored)
        assert demo.sitekey_b64 == public_key_to_base64(key.public)

    def test_unrelated_key_does_not_bypass(self):
        victim = generate_keypair(64, seed=1)
        attacker = generate_keypair(64, seed=2)
        engine = AdblockEngine()
        engine.subscribe(parse_filter_list("||popads.net^", name="easylist"))
        engine.subscribe(parse_filter_list(
            f"@@$sitekey={public_key_to_base64(victim.public)},document",
            name="whitelist"))
        factored = factor_sitekey(attacker.public)
        demo = run_bypass_demo(engine, factored)
        assert not demo.fully_bypassed
        assert demo.blocked_with_key > 0
