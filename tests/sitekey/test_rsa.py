"""Unit tests for the from-scratch RSA implementation."""

import pytest

from repro.sitekey.rsa import (
    KeyError_,
    RsaPublicKey,
    generate_keypair,
    generate_prime,
    is_probable_prime,
    sign,
    verify,
)
import random


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 101, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 100, 7917, 561, 1105):  # incl. Carmichaels
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        assert is_probable_prime(2 ** 127 - 1)   # Mersenne prime

    def test_large_known_composite(self):
        assert not is_probable_prime((2 ** 127 - 1) * 3)

    def test_generate_prime_properties(self):
        rng = random.Random(42)
        p = generate_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p)
        assert p % 2 == 1

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(KeyError_):
            generate_prime(4, random.Random(1))


class TestKeygen:
    def test_modulus_exact_bits(self):
        for bits in (64, 128, 256):
            key = generate_keypair(bits, seed=bits)
            assert key.n.bit_length() == bits

    def test_deterministic_given_seed(self):
        assert generate_keypair(64, seed=7) == generate_keypair(64, seed=7)

    def test_different_seeds_different_keys(self):
        assert generate_keypair(64, seed=1) != generate_keypair(64, seed=2)

    def test_factors_recorded(self):
        key = generate_keypair(96, seed=5)
        assert key.p * key.q == key.n
        assert is_probable_prime(key.p)
        assert is_probable_prime(key.q)

    def test_exponent_inverse(self):
        key = generate_keypair(128, seed=9)
        phi = (key.p - 1) * (key.q - 1)
        assert key.e * key.d % phi == 1

    def test_public_view(self):
        key = generate_keypair(64, seed=3)
        assert key.public == RsaPublicKey(n=key.n, e=key.e)

    def test_too_small_rejected(self):
        with pytest.raises(KeyError_):
            generate_keypair(8, seed=1)

    def test_512_bit_paper_size(self):
        key = generate_keypair(512, seed=0x5ED0)
        assert key.bits == 512


class TestSignVerify:
    def test_round_trip(self):
        key = generate_keypair(256, seed=11)
        message = b"/lander\x00parked.com\x00Mozilla/5.0"
        assert verify(message, sign(message, key), key.public)

    def test_tampered_message_rejected(self):
        key = generate_keypair(256, seed=11)
        signature = sign(b"original", key)
        assert not verify(b"tampered", signature, key.public)

    def test_tampered_signature_rejected(self):
        key = generate_keypair(256, seed=11)
        signature = bytearray(sign(b"m", key))
        signature[0] ^= 0xFF
        assert not verify(b"m", bytes(signature), key.public)

    def test_wrong_key_rejected(self):
        key_a = generate_keypair(256, seed=1)
        key_b = generate_keypair(256, seed=2)
        assert not verify(b"m", sign(b"m", key_a), key_b.public)

    def test_wrong_length_signature_rejected(self):
        key = generate_keypair(256, seed=11)
        assert not verify(b"m", b"\x00" * 10, key.public)

    def test_signature_length_matches_key(self):
        key = generate_keypair(512, seed=4)
        assert len(sign(b"m", key)) == 64

    def test_verify_never_raises_on_junk(self):
        key = generate_keypair(128, seed=6)
        for junk in (b"", b"\xff" * 16, b"\xff" * 64):
            verify(b"m", junk, key.public)

    def test_tiny_demo_keys_still_sign(self):
        key = generate_keypair(32, seed=13)
        assert verify(b"m", sign(b"m", key), key.public)

    def test_empty_message(self):
        key = generate_keypair(128, seed=8)
        assert verify(b"", sign(b"", key), key.public)
