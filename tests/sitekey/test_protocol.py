"""Unit tests for the X-Adblock-Key sitekey protocol."""

import pytest

from repro.sitekey.der import public_key_to_base64
from repro.sitekey.protocol import (
    make_header,
    signed_string,
    split_header,
    verify_presented_key,
)
from repro.sitekey.rsa import generate_keypair

KEY = generate_keypair(256, seed=0xC0FFEE)
URI, HOST, UA = "/lander", "parked-example.com", "Mozilla/5.0 Test"


class TestSignedString:
    def test_components_joined_with_nul(self):
        assert signed_string("/a", "h.com", "UA") == b"/a\x00h.com\x00UA"

    def test_distinct_inputs_distinct_strings(self):
        assert signed_string("/a", "h.com", "UA") != \
            signed_string("/a", "h.comU", "A")


class TestHeader:
    def test_header_structure(self):
        header = make_header(URI, HOST, UA, KEY)
        key_b64, sig_b64 = split_header(header)
        assert key_b64 == public_key_to_base64(KEY.public)
        assert sig_b64

    def test_split_rejects_missing_separator(self):
        with pytest.raises(ValueError):
            split_header("noseparator")
        with pytest.raises(ValueError):
            split_header("_sigonly")
        with pytest.raises(ValueError):
            split_header("keyonly_")


class TestVerification:
    def test_valid_header_verifies(self):
        header = make_header(URI, HOST, UA, KEY)
        result = verify_presented_key(header, URI, HOST, UA)
        assert result.valid
        assert result.sitekey == public_key_to_base64(KEY.public)

    def test_missing_header(self):
        result = verify_presented_key(None, URI, HOST, UA)
        assert not result.valid
        assert "no sitekey" in result.reason

    def test_wrong_host_rejected(self):
        header = make_header(URI, HOST, UA, KEY)
        assert not verify_presented_key(header, URI, "evil.com", UA).valid

    def test_wrong_uri_rejected(self):
        header = make_header(URI, HOST, UA, KEY)
        assert not verify_presented_key(header, "/other", HOST, UA).valid

    def test_wrong_user_agent_rejected(self):
        header = make_header(URI, HOST, UA, KEY)
        assert not verify_presented_key(header, URI, HOST, "curl").valid

    def test_garbage_key_rejected(self):
        result = verify_presented_key("AAAA_BBBB", URI, HOST, UA)
        assert not result.valid
        assert "bad key" in result.reason

    def test_garbage_signature_encoding_rejected(self):
        header = make_header(URI, HOST, UA, KEY)
        key_b64, _ = split_header(header)
        result = verify_presented_key(key_b64 + "_!!!", URI, HOST, UA)
        assert not result.valid

    def test_swapped_signature_rejected(self):
        other = generate_keypair(256, seed=0xDEAD)
        header_a = make_header(URI, HOST, UA, KEY)
        header_b = make_header(URI, HOST, UA, other)
        key_a, _ = split_header(header_a)
        _, sig_b = split_header(header_b)
        assert not verify_presented_key(f"{key_a}_{sig_b}",
                                        URI, HOST, UA).valid

    def test_verification_never_raises(self):
        for junk in ("", "_", "a_b", "=_=", "\x00_\x00", "a" * 10_000):
            verify_presented_key(junk, URI, HOST, UA)
