"""Property-based tests for the sitekey crypto stack (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sitekey.der import (
    DerError,
    decode_public_key,
    encode_public_key,
    public_key_from_base64,
    public_key_to_base64,
)
from repro.sitekey.protocol import make_header, verify_presented_key
from repro.sitekey.rsa import RsaPublicKey, generate_keypair, sign, verify

# Key generation is the slow part; draw from a pre-generated pool.
_KEYS = [generate_keypair(96, seed=i) for i in range(6)]


class TestSignVerifyProperties:
    @given(st.binary(max_size=128), st.integers(0, len(_KEYS) - 1))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_message(self, message, key_index):
        key = _KEYS[key_index]
        assert verify(message, sign(message, key), key.public)

    @given(st.binary(min_size=1, max_size=64),
           st.integers(0, len(_KEYS) - 1),
           st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_bit_flip_breaks_signature(self, message, key_index, bit):
        key = _KEYS[key_index]
        signature = bytearray(sign(message, key))
        signature[(bit // 8) % len(signature)] ^= 1 << (bit % 8)
        assert not verify(message, bytes(signature), key.public)

    @given(st.binary(max_size=64), st.binary(max_size=64),
           st.integers(0, len(_KEYS) - 1))
    @settings(max_examples=60, deadline=None)
    def test_signature_binds_message(self, m1, m2, key_index):
        key = _KEYS[key_index]
        if m1 != m2:
            assert not verify(m2, sign(m1, key), key.public)


class TestDerProperties:
    @given(st.integers(min_value=3, max_value=2 ** 256),
           st.sampled_from([3, 17, 65_537]))
    @settings(max_examples=100)
    def test_any_positive_key_round_trips(self, n, e):
        key = RsaPublicKey(n=n, e=e)
        assert decode_public_key(encode_public_key(key)) == key
        assert public_key_from_base64(public_key_to_base64(key)) == key

    @given(st.binary(max_size=64))
    @settings(max_examples=200)
    def test_decoder_never_crashes(self, blob):
        try:
            decode_public_key(blob)
        except DerError:
            pass

    @given(st.text(max_size=64))
    @settings(max_examples=200)
    def test_base64_decoder_never_crashes(self, text):
        try:
            public_key_from_base64(text)
        except DerError:
            pass


class TestProtocolProperties:
    @given(st.text(min_size=1, max_size=24).filter(lambda s: "\x00" not in s),
           st.integers(0, len(_KEYS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_header_verifies_for_exact_request_only(self, host, key_index):
        key = _KEYS[key_index]
        header = make_header("/", host, "UA", key)
        assert verify_presented_key(header, "/", host, "UA").valid
        assert not verify_presented_key(header, "/", host + "x", "UA").valid

    @given(st.text(max_size=80))
    @settings(max_examples=150)
    def test_verifier_total_on_junk_headers(self, junk):
        result = verify_presented_key(junk, "/", "h.com", "UA")
        assert result.valid in (True, False)
        if result.valid:  # only a real signed header may verify
            raise AssertionError("junk header verified")
