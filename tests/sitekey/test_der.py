"""Unit tests for DER encoding of sitekey public keys."""

import base64

import pytest

from repro.sitekey.der import (
    DerError,
    decode_public_key,
    encode_public_key,
    public_key_from_base64,
    public_key_to_base64,
)
from repro.sitekey.rsa import RsaPublicKey, generate_keypair


class TestRoundTrip:
    def test_encode_decode_identity(self):
        key = generate_keypair(128, seed=1).public
        assert decode_public_key(encode_public_key(key)) == key

    def test_base64_round_trip(self):
        key = generate_keypair(256, seed=2).public
        assert public_key_from_base64(public_key_to_base64(key)) == key

    def test_512_bit_key_prefix_matches_paper(self):
        # The paper's example sitekey begins "MFwwDQYJK..." — the DER
        # prefix of a 512-bit RSA SubjectPublicKeyInfo.
        key = generate_keypair(512, seed=3).public
        assert public_key_to_base64(key).startswith("MFwwDQYJK")

    def test_long_length_encoding(self):
        key = generate_keypair(2048, seed=4).public
        assert decode_public_key(encode_public_key(key)) == key

    def test_high_bit_modulus_gets_leading_zero(self):
        key = RsaPublicKey(n=0xF000000000000001, e=3)
        assert decode_public_key(encode_public_key(key)) == key


class TestDecodingErrors:
    def test_truncated_der(self):
        key = generate_keypair(128, seed=5).public
        encoded = encode_public_key(key)
        with pytest.raises(DerError):
            decode_public_key(encoded[:10])

    def test_wrong_outer_tag(self):
        with pytest.raises(DerError):
            decode_public_key(b"\x02\x01\x01")

    def test_wrong_oid(self):
        key = generate_keypair(128, seed=6).public
        encoded = bytearray(encode_public_key(key))
        encoded[8] ^= 0x01  # corrupt the OID body
        with pytest.raises(DerError):
            decode_public_key(bytes(encoded))

    def test_bad_base64(self):
        with pytest.raises(DerError):
            public_key_from_base64("not!!base64")

    def test_valid_base64_invalid_der(self):
        junk = base64.b64encode(b"\x30\x03\x01\x01\x01").decode()
        with pytest.raises(DerError):
            public_key_from_base64(junk)

    def test_empty_input(self):
        with pytest.raises(DerError):
            decode_public_key(b"")

    def test_bitstring_with_unused_bits_rejected(self):
        key = generate_keypair(128, seed=7).public
        encoded = bytearray(encode_public_key(key))
        # Find the BIT STRING tag and corrupt its unused-bits byte.
        index = encoded.index(0x03)
        encoded[index + 2] = 0x01
        with pytest.raises(DerError):
            decode_public_key(bytes(encoded))
