"""Unit tests for parking services and the Table 3 zone scan."""

import pytest

from repro.sitekey.parking import (
    PARKING_SERVICES,
    ParkedDomainServer,
    ZoneEntry,
    ZoneScanner,
    synthesize_zone,
)
from repro.web.http import (
    CURL_USER_AGENT,
    HttpClient,
    HttpRequest,
    HttpResponse,
    Headers,
)

KEY_BITS = 128  # fast, protocol-identical


def service(name):
    return next(s for s in PARKING_SERVICES if s.name == name)


class TestServiceCatalog:
    def test_five_services(self):
        assert len(PARKING_SERVICES) == 5

    def test_table3_domain_counts(self):
        counts = {s.name: s.com_domains for s in PARKING_SERVICES}
        assert counts == {
            "Sedo": 1_060_129,
            "ParkingCrew": 368_703,
            "RookMedia": 949,
            "Uniregistry": 1_246_359,
            "Digimedia": 25,
        }

    def test_table3_total_matches_paper(self):
        # Table 3's total row sums all five services (RookMedia included
        # even though its sitekey was removed in Sept 2014).
        assert sum(s.com_domains for s in PARKING_SERVICES) == 2_676_165

    def test_rookmedia_removed(self):
        assert not service("RookMedia").active
        assert service("Sedo").active

    def test_distinct_deterministic_keys(self):
        keys = {s.name: s.keypair(bits=KEY_BITS).n
                for s in PARKING_SERVICES}
        assert len(set(keys.values())) == 5
        assert service("Sedo").keypair(bits=KEY_BITS).n == keys["Sedo"]


class TestZoneSynthesis:
    def test_scaled_counts(self):
        zone = synthesize_zone(scale_divisor=10_000, noise_domains=100)
        sedo_ns = service("Sedo").nameservers[0]
        sedo = [e for e in zone if sedo_ns in e.nameservers]
        # 1,060,129 // 10,000 = 106, plus the 8 typo domains.
        assert len(sedo) == 106 + 8

    def test_noise_domains_present(self):
        zone = synthesize_zone(scale_divisor=100_000, noise_domains=50)
        scanner = ZoneScanner(key_bits=KEY_BITS)
        noise = [e for e in zone if scanner.service_for_entry(e) is None]
        assert len(noise) == 50

    def test_deterministic(self):
        a = synthesize_zone(scale_divisor=50_000, noise_domains=10, seed=1)
        b = synthesize_zone(scale_divisor=50_000, noise_domains=10, seed=1)
        assert a == b

    def test_every_service_represented(self):
        zone = synthesize_zone(scale_divisor=2_000_000, noise_domains=0)
        scanner = ZoneScanner(key_bits=KEY_BITS)
        names = {scanner.service_for_entry(e).name for e in zone
                 if scanner.service_for_entry(e)}
        assert names == {s.name for s in PARKING_SERVICES}


class TestParkedDomainServer:
    def _get(self, server, host="parked-x.com", ua=None):
        handler = server.handler()
        client = HttpClient(lambda h: handler if h == host else None)
        if ua:
            client.user_agent = ua
        return client.get(f"http://{host}/")

    def test_sitekey_in_header_and_page(self):
        server = ParkedDomainServer(service("Sedo"), key_bits=KEY_BITS)
        response = self._get(server)
        assert response.adblock_key_header
        assert response.body.root.get("data-adblockkey") == \
            response.adblock_key_header

    def test_parked_page_has_ad_links(self):
        server = ParkedDomainServer(service("Sedo"), key_bits=KEY_BITS)
        response = self._get(server)
        assert len(response.body.ad_elements()) == 6

    def test_parkingcrew_403_for_curl(self):
        server = ParkedDomainServer(service("ParkingCrew"),
                                    key_bits=KEY_BITS)
        response = self._get(server, ua=CURL_USER_AGENT)
        assert response.status == 403

    def test_parkingcrew_serves_browsers(self):
        server = ParkedDomainServer(service("ParkingCrew"),
                                    key_bits=KEY_BITS)
        assert self._get(server).ok

    def test_uniregistry_cookie_round_trip(self):
        server = ParkedDomainServer(service("Uniregistry"),
                                    key_bits=KEY_BITS)
        response = self._get(server)  # client follows the redirect
        assert response.ok
        assert response.adblock_key_header

    def test_sitekey_can_be_disabled(self):
        server = ParkedDomainServer(service("Sedo"), key_bits=KEY_BITS,
                                    present_sitekey=False)
        assert self._get(server).adblock_key_header is None


class TestZoneScan:
    @pytest.fixture(scope="class")
    def scan_results(self):
        zone = synthesize_zone(scale_divisor=20_000, noise_domains=100)
        return ZoneScanner(key_bits=KEY_BITS).scan(zone), zone

    def test_all_suspected_confirmed(self, scan_results):
        results, _ = scan_results
        for name, result in results.items():
            assert result.confirmed == result.suspected, name
            assert not result.rejected

    def test_scaled_totals_near_paper(self, scan_results):
        results, _ = scan_results
        total = sum(r.scaled_confirmed(20_000)
                    for r in results.values() if r.service.active)
        # Scaling granularity costs a little; the shape must hold.
        assert abs(total - 2_676_165) / 2_676_165 < 0.15

    def test_noise_not_counted(self, scan_results):
        results, zone = scan_results
        confirmed = sum(r.confirmed for r in results.values())
        assert confirmed < len(zone)

    def test_curl_scan_misses_parkingcrew(self):
        zone = synthesize_zone(scale_divisor=50_000, noise_domains=0)
        scanner = ZoneScanner(key_bits=KEY_BITS)
        results = scanner.scan_with_user_agent(zone, CURL_USER_AGENT)
        assert results["ParkingCrew"].confirmed == 0
        assert results["ParkingCrew"].suspected > 0
        assert results["Sedo"].confirmed > 0

    def test_hostile_server_rejected(self):
        zone = [ZoneEntry("sabotage-sedo.com",
                          service("Sedo").nameservers)]

        def hostile(request: HttpRequest) -> HttpResponse:
            return HttpResponse(status=200, headers=Headers(
                [("X-Adblock-Key", "FORGED_SIGNATURE")]))

        scanner = ZoneScanner(
            key_bits=KEY_BITS,
            resolver_overlay={"sabotage-sedo.com": hostile})
        results = scanner.scan(zone)
        assert results["Sedo"].confirmed == 0
        assert results["Sedo"].rejected == ["sabotage-sedo.com"]

    def test_dead_domain_rejected_not_fatal(self):
        zone = [
            ZoneEntry("dead-sedo.com", service("Sedo").nameservers),
            ZoneEntry("live-sedo.com", service("Sedo").nameservers),
        ]

        def dead(request):
            return HttpResponse(status=500, body="oops")

        scanner = ZoneScanner(key_bits=KEY_BITS,
                              resolver_overlay={"dead-sedo.com": dead})
        results = scanner.scan(zone)
        assert results["Sedo"].confirmed == 1
        assert "dead-sedo.com" in results["Sedo"].rejected
