"""Calibration tests: the generated history must reproduce the paper."""

from datetime import date

from repro.filters.parser import parse_filter
from repro.history.analysis import yearly_activity
from repro.history.generator import YEARLY_TARGETS


class TestShape:
    def test_989_revisions(self, history):
        assert len(history.repository) == 989

    def test_date_range(self, history):
        assert history.repository[0].when == date(2011, 10, 3)
        assert history.repository.tip.when == date(2015, 4, 28)

    def test_tip_filter_count_is_5936(self, history):
        lines = history.tip_lines()
        filters = [l for l in lines if l and not l.startswith("!")]
        assert len(filters) == 5_936


class TestTable1Exact:
    def test_every_cell(self, history):
        rows = {row.year: row
                for row in yearly_activity(history.repository)}
        for year, target in YEARLY_TARGETS.items():
            row = rows[year]
            assert row.revisions == target.revisions, year
            assert row.filters_added == target.filters_added, year
            assert row.filters_removed == target.filters_removed, year
            assert row.domains_added == target.domains_added, year
            assert row.domains_removed == target.domains_removed, year

    def test_totals(self, history):
        rows = yearly_activity(history.repository)
        assert sum(r.filters_added for r in rows) == 8_808
        assert sum(r.filters_added for r in rows) \
            - sum(r.filters_removed for r in rows) == 5_936
        assert sum(r.domains_added for r in rows) == 3_542
        assert sum(r.domains_removed for r in rows) == 410


class TestLandmarks:
    def test_google_jump_at_rev_200(self, history):
        cs = history.repository[200]
        filters = [l for l in cs.added if l and not l.startswith("!")]
        assert len(filters) >= 1_262
        assert cs.when.year == 2013

    def test_golem_filters_at_rev_67(self, history):
        cs = history.repository[67]
        assert any("golem" in line for line in cs.added)
        assert cs.when.year == 2012
        assert any("www.google.com#@##adBlock" == line
                   for line in cs.added)

    def test_golem_fix_removes_google_element_filter(self, history):
        cs = history.repository[75]
        assert "www.google.com#@##adBlock" in cs.removed

    def test_truncated_filters_at_rev_326(self, history):
        cs = history.repository[326]
        truncated = [l for l in cs.added if len(l) == 4_095]
        assert len(truncated) == 8

    def test_sedo_sitekey_added_2011(self, history):
        for cs in history.repository.log():
            if any("sitekey=" in line for line in cs.added):
                assert cs.when.year == 2011
                assert cs.when >= date(2011, 11, 25)
                break
        else:
            raise AssertionError("no sitekey filter found")

    def test_rookmedia_removed_sept_2014(self, history):
        for cs in history.repository.log():
            if any("rookmedia" in line.lower() for line in cs.removed):
                assert cs.when.year == 2014
                assert cs.when.month == 9
                break
        else:
            raise AssertionError("RookMedia never removed")


class TestTipComposition:
    def test_four_active_sitekeys(self, history):
        assert set(history.sitekeys) == {
            "Sedo", "ParkingCrew", "RookMedia", "Uniregistry", "Digimedia"}
        tip = "\n".join(history.tip_lines())
        assert history.sitekeys["RookMedia"] not in tip
        for name in ("Sedo", "ParkingCrew", "Uniregistry", "Digimedia"):
            assert history.sitekeys[name] in tip

    def test_catalog_whitelist_filters_present(self, history):
        from repro.web.adnetworks import whitelisted_networks

        tip = set(history.tip_lines())
        for net in whitelisted_networks():
            for text in net.whitelist_filters:
                assert text in tip, text

    def test_pinned_publisher_filters_present(self, history):
        from repro.web.sites import PINNED_PROFILES

        tip = set(history.tip_lines())
        for profile in PINNED_PROFILES.values():
            for text in profile.whitelist_filters:
                assert text in tip, (profile.domain, text)

    def test_tip_parses_cleanly_except_truncated(self, history):
        flist = history.tip_filter_list()
        assert len(flist.invalid_filters) == 8

    def test_publisher_directory_consistent_with_tip(self, history):
        tip = set(history.tip_lines())
        for domain, filters in history.publisher_directory.items():
            for text in filters:
                if text in tip:
                    parsed = parse_filter(text)
                    assert domain in parsed.restricted_domains


class TestDeterminism:
    def test_same_seed_same_history(self, history):
        from repro.history.generator import generate_history

        again = generate_history(seed=2015, key_bits=128)
        assert again.tip_lines() == history.tip_lines()
        assert [c.message for c in again.repository.log()] == \
            [c.message for c in history.repository.log()]
