"""Unit tests for history analyses (Table 1 / Figure 3 machinery)."""

from datetime import date

import pytest

from repro.history.analysis import (
    growth_series,
    update_cadence,
    yearly_activity,
)
from repro.history.repository import Repository


def build(*commits):
    repo = Repository()
    for when, added, removed in commits:
        repo.commit(when, "m", added=added, removed=removed)
    return repo


class TestYearlyActivity:
    def test_filters_counted_excluding_comments(self):
        repo = build((date(2012, 1, 1), ["! c", "||a.com^"], []))
        row = yearly_activity(repo)[0]
        assert row.filters_added == 1

    def test_modification_counts_both_sides(self):
        repo = build(
            (date(2012, 1, 1), ["@@||x.com^$domain=a.com"], []),
            (date(2012, 2, 1), ["@@||x.com/v2/$domain=a.com"],
             ["@@||x.com^$domain=a.com"]),
        )
        row = yearly_activity(repo)[0]
        assert row.filters_added == 2
        assert row.filters_removed == 1

    def test_domain_first_appearance_counted_once(self):
        repo = build(
            (date(2012, 1, 1), ["@@||x.com^$domain=a.com"], []),
            (date(2012, 2, 1), ["@@||y.com^$domain=a.com"], []),
        )
        row = yearly_activity(repo)[0]
        assert row.domains_added == 1

    def test_domain_removed_when_last_reference_gone(self):
        repo = build(
            (date(2012, 1, 1), ["@@||x.com^$domain=a.com",
                                "@@||y.com^$domain=a.com"], []),
            (date(2012, 2, 1), [], ["@@||x.com^$domain=a.com"]),
            (date(2012, 3, 1), [], ["@@||y.com^$domain=a.com"]),
        )
        row = yearly_activity(repo)[0]
        assert row.domains_removed == 1

    def test_same_revision_modification_keeps_domain(self):
        repo = build(
            (date(2012, 1, 1), ["@@||x.com^$domain=a.com"], []),
            (date(2012, 2, 1), ["@@||x.com/v2/$domain=a.com"],
             ["@@||x.com^$domain=a.com"]),
        )
        row = yearly_activity(repo)[0]
        assert row.domains_removed == 0

    def test_readdition_not_counted_as_new_domain(self):
        repo = build(
            (date(2012, 1, 1), ["@@||x.com^$domain=a.com"], []),
            (date(2013, 1, 1), [], ["@@||x.com^$domain=a.com"]),
            (date(2014, 1, 1), ["@@||x.com^$domain=a.com"], []),
        )
        rows = {r.year: r for r in yearly_activity(repo)}
        assert rows[2012].domains_added == 1
        assert rows[2013].domains_removed == 1
        assert rows[2014].domains_added == 0

    def test_element_filter_domains_counted(self):
        repo = build((date(2012, 1, 1), ["a.com#@#.ad"], []))
        assert yearly_activity(repo)[0].domains_added == 1

    def test_years_sorted(self):
        repo = build(
            (date(2011, 12, 1), ["||a.com^"], []),
            (date(2013, 1, 1), ["||b.com^"], []),
        )
        assert [r.year for r in yearly_activity(repo)] == [2011, 2013]


class TestGrowthSeries:
    def test_cumulative_counts(self):
        repo = build(
            (date(2012, 1, 1), ["||a.com^", "||b.com^"], []),
            (date(2012, 2, 1), ["||c.com^"], ["||a.com^"]),
        )
        series = growth_series(repo)
        assert [p.filters for p in series] == [2, 2]

    def test_comments_not_counted(self):
        repo = build((date(2012, 1, 1), ["! x", "||a.com^"], []))
        assert growth_series(repo)[0].filters == 1

    def test_final_point_matches_tip(self, history):
        series = growth_series(history.repository)
        assert series[-1].filters == 5_936

    def test_monotone_revision_numbers(self, history):
        series = growth_series(history.repository)
        assert [p.rev for p in series] == list(range(989))

    def test_google_jump_visible(self, history):
        series = growth_series(history.repository)
        delta = series[200].filters - series[199].filters
        assert delta >= 1_262


class TestCadence:
    def test_paper_scale_cadence(self, history):
        cadence = update_cadence(history.repository)
        # "updated every 1.5 days, adding or modifying 11.4 filters"
        assert 1.0 <= cadence.days_per_update <= 2.0
        assert 9.0 <= cadence.changes_per_update <= 14.0

    def test_since_filter(self, history):
        cadence = update_cadence(history.repository,
                                 since=date(2014, 1, 1))
        assert cadence.updates < 989

    def test_requires_two_changesets(self):
        repo = build((date(2012, 1, 1), ["||a.com^"], []))
        with pytest.raises(ValueError):
            update_cadence(repo)
