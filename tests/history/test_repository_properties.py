"""Property-based tests for the revision store (hypothesis)."""

from datetime import date, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.history.repository import Repository

_LINE = st.text(alphabet="abcdef|@^.", min_size=1, max_size=10).map(
    lambda s: "@@||" + s)


@st.composite
def _changesets(draw):
    """A random valid sequence of (added, removed) deltas."""
    steps = draw(st.integers(min_value=1, max_value=120))
    plan = []
    working: list[str] = []
    for _ in range(steps):
        added = draw(st.lists(_LINE, max_size=4))
        removable = draw(st.lists(
            st.sampled_from(working), max_size=min(3, len(working)),
        )) if working else []
        # Removals must be satisfiable as a multiset.
        removed = []
        pool = list(working)
        for line in removable:
            if line in pool:
                pool.remove(line)
                removed.append(line)
        plan.append((added, removed))
        for line in removed:
            working.remove(line)
        working.extend(added)
    return plan


class TestRepositoryInvariants:
    @given(_changesets())
    @settings(max_examples=50, deadline=None)
    def test_replay_equals_incremental(self, plan):
        """checkout(i) must equal an independent replay of deltas 0..i."""
        repo = Repository()
        working: list[str] = []
        start = date(2011, 10, 3)
        for i, (added, removed) in enumerate(plan):
            repo.commit(start + timedelta(days=i), "m",
                        added=added, removed=removed)
            for line in removed:
                working.remove(line)
            working.extend(added)
        assert repo.checkout(len(plan) - 1) == working
        # Spot-check interior revisions, including snapshot boundaries.
        for rev in {0, len(plan) // 2, len(plan) - 1, 63, 64}:
            if rev < len(plan):
                repo.checkout(rev)

    @given(_changesets())
    @settings(max_examples=30, deadline=None)
    def test_line_conservation(self, plan):
        """len(content) == total added - total removed at every rev."""
        repo = Repository()
        start = date(2011, 10, 3)
        for i, (added, removed) in enumerate(plan):
            repo.commit(start + timedelta(days=i), "m",
                        added=added, removed=removed)
        running = 0
        for changeset in repo.log():
            running += len(changeset.added) - len(changeset.removed)
            assert len(repo.checkout(changeset.rev)) == running

    @given(_changesets())
    @settings(max_examples=30, deadline=None)
    def test_diff_applies_forward(self, plan):
        """Applying diff(a, b) to checkout(a) reproduces checkout(b)."""
        from collections import Counter

        repo = Repository()
        start = date(2011, 10, 3)
        for i, (added, removed) in enumerate(plan):
            repo.commit(start + timedelta(days=i), "m",
                        added=added, removed=removed)
        last = len(plan) - 1
        mid = last // 2
        added, removed = repo.diff(mid, last)
        before = Counter(repo.checkout(mid))
        after = Counter(repo.checkout(last))
        assert before + Counter(added) - Counter(removed) == after
