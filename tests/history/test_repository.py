"""Unit tests for the Mercurial-like revision store."""

from datetime import date

import pytest

from repro.history.repository import Repository, RepositoryError


def repo_with(*changesets):
    repo = Repository()
    for i, (added, removed) in enumerate(changesets):
        repo.commit(date(2013, 1, 1 + i), f"rev {i}",
                    added=added, removed=removed)
    return repo


class TestCommit:
    def test_commit_returns_changeset(self):
        repo = Repository()
        cs = repo.commit(date(2011, 10, 3), "init", added=["a"])
        assert cs.rev == 0
        assert cs.added == ("a",)

    def test_removing_absent_line_rejected(self):
        repo = Repository()
        repo.commit(date(2011, 10, 3), "init", added=["a"])
        with pytest.raises(RepositoryError):
            repo.commit(date(2011, 10, 4), "bad", removed=["missing"])

    def test_failed_commit_leaves_state_unchanged(self):
        repo = repo_with((["a"], []))
        with pytest.raises(RepositoryError):
            repo.commit(date(2013, 2, 1), "bad",
                        added=["b"], removed=["missing"])
        assert len(repo) == 1
        assert repo.checkout(0) == ["a"]

    def test_dates_must_not_go_backwards(self):
        repo = Repository()
        repo.commit(date(2013, 5, 1), "a", added=["x"])
        with pytest.raises(RepositoryError):
            repo.commit(date(2013, 4, 30), "b", added=["y"])

    def test_same_day_commits_allowed(self):
        repo = Repository()
        repo.commit(date(2013, 5, 1), "a", added=["x"])
        repo.commit(date(2013, 5, 1), "b", added=["y"])
        assert len(repo) == 2

    def test_modification_in_one_commit(self):
        repo = repo_with((["old"], []), (["new"], ["old"]))
        assert repo.checkout(1) == ["new"]


class TestCheckout:
    def test_checkout_each_revision(self):
        repo = repo_with((["a", "b"], []), (["c"], ["a"]), ([], ["b"]))
        assert repo.checkout(0) == ["a", "b"]
        assert repo.checkout(1) == ["b", "c"]
        assert repo.checkout(2) == ["c"]

    def test_checkout_is_a_copy(self):
        repo = repo_with((["a"], []))
        content = repo.checkout(0)
        content.append("mutated")
        assert repo.checkout(0) == ["a"]

    def test_bad_revision_rejected(self):
        repo = repo_with((["a"], []))
        with pytest.raises(RepositoryError):
            repo.checkout(5)
        with pytest.raises(RepositoryError):
            repo.checkout(-1)

    def test_duplicate_lines_as_multiset(self):
        repo = repo_with((["a", "a"], []), ([], ["a"]))
        assert repo.checkout(0) == ["a", "a"]
        assert repo.checkout(1) == ["a"]

    def test_checkout_past_snapshot_boundary(self):
        repo = Repository()
        for i in range(150):  # crosses the 64-revision snapshot cadence
            repo.commit(date(2013, 1, 1), f"rev {i}", added=[f"line{i}"])
        assert len(repo.checkout(149)) == 150
        assert repo.checkout(70) == [f"line{i}" for i in range(71)]
        assert repo.checkout(64) == [f"line{i}" for i in range(65)]
        assert repo.checkout(63) == [f"line{i}" for i in range(64)]


class TestHistoryAccess:
    def test_tip(self):
        repo = repo_with((["a"], []), (["b"], []))
        assert repo.tip.rev == 1

    def test_empty_repo_has_no_tip(self):
        with pytest.raises(RepositoryError):
            Repository().tip

    def test_log_order(self):
        repo = repo_with((["a"], []), (["b"], []))
        assert [c.rev for c in repo.log()] == [0, 1]

    def test_getitem(self):
        repo = repo_with((["a"], []))
        assert repo[0].message == "rev 0"

    def test_churn(self):
        repo = repo_with((["a", "b"], []), (["c"], ["a"]))
        assert repo[1].churn == 2

    def test_revisions_in_year(self):
        repo = Repository()
        repo.commit(date(2012, 6, 1), "x", added=["a"])
        repo.commit(date(2013, 6, 1), "y", added=["b"])
        assert len(repo.revisions_in_year(2012)) == 1
        assert repo.revisions_in_year(2014) == []

    def test_rev_at_date(self):
        repo = Repository()
        repo.commit(date(2012, 6, 1), "x", added=["a"])
        repo.commit(date(2013, 6, 1), "y", added=["b"])
        assert repo.rev_at_date(date(2012, 12, 31)) == 0
        assert repo.rev_at_date(date(2013, 6, 1)) == 1
        assert repo.rev_at_date(date(2011, 1, 1)) is None


class TestDiff:
    def test_simple_diff(self):
        repo = repo_with((["a", "b"], []), (["c"], ["a"]))
        added, removed = repo.diff(0, 1)
        assert added == ["c"]
        assert removed == ["a"]

    def test_add_then_remove_cancels(self):
        repo = repo_with((["a"], []), (["temp"], []), ([], ["temp"]))
        added, removed = repo.diff(0, 2)
        assert added == []
        assert removed == []

    def test_diff_requires_ordering(self):
        repo = repo_with((["a"], []), (["b"], []))
        with pytest.raises(RepositoryError):
            repo.diff(1, 0)

    def test_diff_same_rev_empty(self):
        repo = repo_with((["a"], []))
        assert repo.diff(0, 0) == ([], [])
