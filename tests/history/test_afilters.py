"""Unit tests for Section 7's A-filter mining."""

from datetime import date

from repro.history.afilters import mine_a_filters
from repro.history.repository import Repository


def small_repo():
    repo = Repository()
    repo.commit(date(2013, 6, 1), "Updated whitelists.",
                added=["!A1", "@@||one.com^$elemhide",
                       "@@||two.com^$elemhide"])
    repo.commit(date(2013, 7, 1),
                "Whitelist x https://adblockplus.org/forum/"
                "viewtopic.php?f=12&t=99",
                added=["! vetted group", "@@||vetted.com^$elemhide"])
    repo.commit(date(2014, 1, 1), "Updated whitelists.",
                added=["!A2", "@@||three.com^$elemhide"])
    repo.commit(date(2014, 6, 1), "Updated whitelists.",
                removed=["!A1", "@@||one.com^$elemhide",
                         "@@||two.com^$elemhide"])
    repo.commit(date(2014, 7, 1), "Updated whitelists.",
                added=["!A3", "@@||one.com^$elemhide",
                       "@@||two.com^$elemhide"])
    return repo


class TestMining:
    def test_groups_found(self):
        report = mine_a_filters(small_repo())
        assert set(report.groups) == {1, 2, 3}

    def test_vetted_group_not_mistaken_for_a_group(self):
        report = mine_a_filters(small_repo())
        all_filters = {f for g in report.groups.values()
                       for f in g.filters}
        assert "@@||vetted.com^$elemhide" not in all_filters

    def test_group_contents_positional(self):
        report = mine_a_filters(small_repo())
        assert report.groups[1].filters == (
            "@@||one.com^$elemhide", "@@||two.com^$elemhide")

    def test_removal_tracked(self):
        report = mine_a_filters(small_repo())
        assert report.groups[1].removed_rev == 3
        assert report.groups[2].active

    def test_readdition_detected(self):
        report = mine_a_filters(small_repo())
        assert report.groups[1].readded_as == 3

    def test_disclosure_flag(self):
        report = mine_a_filters(small_repo())
        assert not report.groups[1].publicly_disclosed
        assert len(report.undisclosed) == 3


class TestPaperScale:
    def test_61_groups_added(self, study):
        assert study.a_filters.total_added == 61

    def test_5_groups_removed(self, study):
        assert len(study.a_filters.removed) == 5

    def test_a7_readded_as_a28(self, study):
        readded = {(g.number, g.readded_as)
                   for g in study.a_filters.readded}
        assert (7, 28) in readded

    def test_none_publicly_disclosed(self, study):
        assert len(study.a_filters.undisclosed) == 61

    def test_commit_message_fingerprint(self, study):
        messages = {g.commit_message for g in
                    study.a_filters.groups.values()}
        assert "Updated whitelists." in messages
        assert "Added new whitelists." in messages

    def test_known_special_groups(self, study):
        groups = study.a_filters.groups
        assert any("ask.com" in f for f in groups[6].filters)
        assert any("comcast" in f for f in groups[29].filters)
        assert any("kayak.com.au" in f for f in groups[46].filters)
        assert any("twcc.com" in f for f in groups[50].filters)

    def test_a59_contains_unrestricted_adsense(self, study):
        assert "@@||google.com/adsense/search/ads.js$script" in \
            study.a_filters.groups[59].filters

    def test_active_groups_at_tip(self, study):
        assert len(study.a_filters.active) == 56
