"""Tests for the per-month activity slicing."""

from datetime import date

from repro.history.analysis import monthly_activity
from repro.history.repository import Repository


class TestMonthlyActivity:
    def test_basic_slicing(self):
        repo = Repository()
        repo.commit(date(2013, 5, 1), "a", added=["||a.com^"])
        repo.commit(date(2013, 5, 20), "b", added=["||b.com^", "! c"])
        repo.commit(date(2013, 7, 1), "c", removed=["||a.com^"])
        rows = monthly_activity(repo)
        assert [(r.year, r.month) for r in rows] == [(2013, 5), (2013, 7)]
        assert rows[0].revisions == 2
        assert rows[0].filters_added == 2  # comment excluded
        assert rows[1].filters_removed == 1
        assert rows[1].net_change == -1

    def test_months_sorted_across_years(self):
        repo = Repository()
        repo.commit(date(2012, 12, 1), "a", added=["||a.com^"])
        repo.commit(date(2013, 1, 1), "b", added=["||b.com^"])
        rows = monthly_activity(repo)
        assert [(r.year, r.month) for r in rows] == [(2012, 12), (2013, 1)]

    def test_consistent_with_yearly(self, history):
        from repro.history.analysis import yearly_activity

        monthly = monthly_activity(history.repository)
        yearly = {r.year: r for r in yearly_activity(history.repository)}
        for year in (2011, 2013, 2015):
            month_sum = sum(r.filters_added for r in monthly
                            if r.year == year)
            assert month_sum == yearly[year].filters_added

    def test_google_jump_month_dominates_2013(self, history):
        monthly = monthly_activity(history.repository)
        in_2013 = [r for r in monthly if r.year == 2013]
        peak = max(in_2013, key=lambda r: r.filters_added)
        # The Rev-200 Google addition lands in one 2013 month.
        assert peak.filters_added >= 1_262
