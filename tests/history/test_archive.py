"""Unit tests for history archiving."""

import io
from datetime import date

import pytest

from repro.history.archive import (
    ArchiveError,
    dump_repository,
    load_repository,
    read_repository,
    save_repository,
)
from repro.history.repository import Repository


def small_repo() -> Repository:
    repo = Repository(name="test-list")
    repo.commit(date(2011, 10, 3), "init",
                added=["! c", "||a.com^", "@@||b.com^$domain=a.com"])
    repo.commit(date(2012, 1, 1), "update",
                added=["||c.com^"], removed=["||a.com^"])
    return repo


def round_trip(repo: Repository) -> Repository:
    buffer = io.StringIO()
    dump_repository(repo, buffer)
    buffer.seek(0)
    return read_repository(buffer)


class TestRoundTrip:
    def test_content_identical(self):
        repo = small_repo()
        loaded = round_trip(repo)
        assert loaded.checkout(1) == repo.checkout(1)
        assert loaded.name == "test-list"

    def test_metadata_identical(self):
        loaded = round_trip(small_repo())
        assert loaded[0].message == "init"
        assert loaded[1].when == date(2012, 1, 1)

    def test_file_round_trip(self, tmp_path):
        repo = small_repo()
        path = save_repository(repo, tmp_path / "history.jsonl")
        loaded = load_repository(path)
        assert loaded.checkout(1) == repo.checkout(1)

    def test_full_generated_history_round_trips(self, history, tmp_path):
        path = save_repository(history.repository,
                               tmp_path / "full.jsonl")
        loaded = load_repository(path)
        assert len(loaded) == 989
        assert loaded.checkout(988) == history.repository.checkout(988)


class TestFailureModes:
    def test_empty_archive(self):
        with pytest.raises(ArchiveError):
            read_repository(io.StringIO(""))

    def test_wrong_format(self):
        with pytest.raises(ArchiveError):
            read_repository(io.StringIO('{"format": "other"}\n'))

    def test_wrong_version(self):
        with pytest.raises(ArchiveError):
            read_repository(io.StringIO(
                '{"format": "repro-history", "version": 99}\n'))

    def test_corrupt_json_line(self):
        buffer = io.StringIO()
        dump_repository(small_repo(), buffer)
        text = buffer.getvalue() + "{not json\n"
        with pytest.raises(ArchiveError):
            read_repository(io.StringIO(text))

    def test_inconsistent_removal_rejected(self):
        text = ('{"format": "repro-history", "version": 1, "name": "x"}\n'
                '{"rev": 0, "when": "2011-10-03", "message": "m", '
                '"added": [], "removed": ["never-added"]}\n')
        with pytest.raises(ArchiveError):
            read_repository(io.StringIO(text))

    def test_revision_mismatch_rejected(self):
        text = ('{"format": "repro-history", "version": 1, "name": "x"}\n'
                '{"rev": 5, "when": "2011-10-03", "message": "m", '
                '"added": ["||a.com^"], "removed": []}\n')
        with pytest.raises(ArchiveError):
            read_repository(io.StringIO(text))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArchiveError):
            load_repository(tmp_path / "absent.jsonl")

    def test_blank_lines_tolerated(self):
        buffer = io.StringIO()
        dump_repository(small_repo(), buffer)
        text = buffer.getvalue().replace("\n", "\n\n")
        loaded = read_repository(io.StringIO(text))
        assert len(loaded) == 2
