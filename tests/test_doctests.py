"""Doctest coverage for the documented packages.

``repro.filters`` and ``repro.obs`` carry executable examples in their
docstrings (the keyword-index fallback semantics, the observability
contract).  Running them from the suite keeps the docstrings honest
without requiring a separate ``pytest --doctest-modules`` invocation.
"""

import doctest
import importlib
import pkgutil

import pytest

DOCTESTED_PACKAGES = ("repro.filters", "repro.obs", "repro.state",
                      "repro.parallel", "repro.serve")


def _modules() -> list[str]:
    names: list[str] = []
    for package_name in DOCTESTED_PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.walk_packages(package.__path__,
                                          prefix=package_name + "."):
            names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False, report=True)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}")


def test_index_and_obs_examples_exist():
    """The satellite docstrings actually contain examples (not stubs)."""
    import repro.filters.index
    import repro.obs
    import repro.obs.metrics

    finder = doctest.DocTestFinder()
    for module in (repro.filters.index, repro.obs, repro.obs.metrics):
        examples = sum(len(t.examples) for t in finder.find(module))
        assert examples > 0, f"no doctest examples in {module.__name__}"
