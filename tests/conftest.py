"""Shared fixtures.

The expensive artifacts — the 989-revision history and a scaled-down
survey — are built once per session.  Tests that need paper-scale
numbers assert on ratios and orderings, not absolute survey counts, so
the scaled samples are sufficient.
"""

from __future__ import annotations

import pytest

from repro.core.study import AcceptableAdsStudy, StudyConfig
from repro.history.generator import WhitelistHistory, generate_history
from repro.measurement.survey import SurveyConfig

#: Small RSA keys keep history generation fast; every sitekey code path
#: is identical at any size.
TEST_KEY_BITS = 128


@pytest.fixture(scope="session")
def history() -> WhitelistHistory:
    return generate_history(seed=2015, key_bits=TEST_KEY_BITS)


@pytest.fixture(scope="session")
def study(history: WhitelistHistory) -> AcceptableAdsStudy:
    config = StudyConfig(
        seed=2015,
        key_bits=TEST_KEY_BITS,
        survey=SurveyConfig(top_n=600, stratum_size=100),
        zone_scale_divisor=20_000,
        zone_noise_domains=200,
        perception_respondents=305,
    )
    instance = AcceptableAdsStudy(config)
    # Share the session history instead of regenerating it.
    instance.__dict__["history"] = history
    return instance


@pytest.fixture(scope="session")
def whitelist(history: WhitelistHistory):
    return history.tip_filter_list()


@pytest.fixture(scope="session")
def site_survey(study: AcceptableAdsStudy):
    return study.site_survey


@pytest.fixture(scope="session")
def perception(study: AcceptableAdsStudy):
    return study.perception
