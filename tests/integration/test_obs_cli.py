"""End-to-end ``repro obs``: artifacts alone reproduce live reports.

The contract (docs/OBSERVABILITY.md): everything the CLI prints about a
run's observability is a pure function of the exported JSONL artifacts,
so ``repro obs summary`` over the ``--metrics-out``/``--trace`` files
re-renders the live summary byte for byte, and ``repro obs diff`` turns
two artifacts (or an artifact and a committed benchmark JSON) into a CI
gate.
"""

import io
import json

import pytest

from repro.cli import main
from repro.state.atomic import read_jsonl

ARGS = ("survey", "--top", "20", "--stratum", "5", "--fast",
        "--fault-rate", "0.3", "--fault-seed", "7", "--workers", "2")


def run_cli(*argv: str, expect: int = 0) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == expect, out.getvalue()
    return out.getvalue()


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("obs-cli")
    metrics = str(tmp / "metrics.jsonl")
    trace = str(tmp / "trace.jsonl")
    output = run_cli(*ARGS, "--metrics-out", metrics, "--trace", trace)
    return output, metrics, trace


class TestSummary:
    def test_reproduces_live_summary_byte_for_byte(self, run):
        output, metrics, trace = run
        live = output[output.index("Observability summary"):]
        assert run_cli("obs", "summary", metrics, trace) == live

    def test_accepts_single_artifact(self, run):
        _, metrics, _ = run
        text = run_cli("obs", "summary", metrics)
        assert "Where the time went" not in text  # no spans in this file
        assert "web.crawl.latency_ms" in text

    def test_missing_file_fails_cleanly(self, run):
        text = run_cli("obs", "summary", "/no/such/file.jsonl", expect=2)
        assert text.startswith("error:")

    def test_truncated_artifact_fails_cleanly(self, run, tmp_path):
        """A torn JSONL export (crash mid-write, no integrity footer)

        must exit 2 with a one-line message naming the file — not an
        uncaught json.JSONDecodeError traceback.
        """
        _, metrics, _ = run
        torn = tmp_path / "torn.jsonl"
        with open(metrics, "rb") as handle:
            whole = handle.read()
        torn.write_bytes(whole[:len(whole) // 2])
        text = run_cli("obs", "summary", str(torn), expect=2)
        assert text.startswith("error:")
        assert str(torn) in text
        assert len(text.strip().splitlines()) == 1

    def test_truncated_diff_baseline_fails_cleanly(self, run, tmp_path):
        _, metrics, _ = run
        torn = tmp_path / "torn-base.jsonl"
        torn.write_text('{"type":"counter","name":"x",\n')
        text = run_cli("obs", "diff", str(torn), metrics, expect=2)
        assert text.startswith("error:")
        assert str(torn) in text


class TestSlowAndTree:
    def test_slow_ranks_visit_spans(self, run):
        _, _, trace = run
        text = run_cli("obs", "slow", trace, "--top", "3")
        lines = text.splitlines()
        assert lines[0].startswith("Slowest spans")
        assert len(lines) == 3 + 3  # title + header + rule + 3 rows
        assert "web.crawl.visit" in text and "domain=" in text

    def test_slow_by_self(self, run):
        _, _, trace = run
        assert "by self time" in run_cli("obs", "slow", trace,
                                         "--by", "self")

    def test_tree_nests_and_marks_critical_path(self, run):
        _, _, trace = run
        text = run_cli("obs", "tree", trace)
        lines = text.splitlines()
        assert lines[0].startswith("survey.run")
        assert any(line.startswith("  survey.crawl.parallel")
                   for line in lines)
        assert any(line.startswith("    web.crawl.visit")
                   for line in lines)
        assert lines[-1] == "(* = critical path)"
        assert sum(1 for line in lines if line.endswith(" *")) >= 2


class TestDiff:
    def test_identical_runs_pass(self, run):
        _, metrics, _ = run
        text = run_cli("obs", "diff", metrics, metrics)
        assert "ok:" in text and "FAIL" not in text

    def test_regression_fails_with_exit_1(self, run, tmp_path):
        _, metrics, _ = run
        slowed = self._rewrite(metrics, tmp_path / "slowed.jsonl",
                               scale=2.0)
        text = run_cli("obs", "diff", metrics, slowed,
                       "--metric", "web.crawl.latency_ms.*",
                       expect=1)
        assert "FAIL" in text

    def test_tolerance_flag_widens_gate(self, run, tmp_path):
        _, metrics, _ = run
        slowed = self._rewrite(metrics, tmp_path / "slowed.jsonl",
                               scale=2.0)
        run_cli("obs", "diff", metrics, slowed, "--tolerance", "20",
                "--metric", "web.crawl.latency_ms.*")

    def test_against_committed_bench_json(self, run, tmp_path):
        _, metrics, _ = run
        flat = {}
        for record in read_jsonl(metrics):
            if record["type"] == "counter":
                label = record["name"]
                if record["labels"]:
                    inner = ",".join(f"{k}={v}" for k, v
                                     in record["labels"].items())
                    label = f"{label}{{{inner}}}"
                flat[label] = record["value"]
        baseline = tmp_path / "BENCH_survey.json"
        baseline.write_text(json.dumps(flat))
        run_cli("obs", "diff", str(baseline), metrics,
                "--metric", "web.crawl.outcomes*")

    def _rewrite(self, source: str, dest, *, scale: float) -> str:
        from repro.state.atomic import atomic_write_jsonl

        records = []
        for record in read_jsonl(source):
            if record.get("name") == "web.crawl.latency_ms":
                record = dict(record)
                record["sum"] = record["sum"] * scale
            records.append(record)
        atomic_write_jsonl(str(dest), records)
        return str(dest)


class TestDiffJson:
    def test_identical_runs_emit_ok_document(self, run):
        _, metrics, _ = run
        document = json.loads(run_cli("obs", "diff", metrics, metrics,
                                      "--json"))
        assert document["ok"] is True
        assert document["violations"] == 0
        assert document["metrics"] == len(document["deltas"])
        assert all(delta["violation"] is False
                   for delta in document["deltas"])

    def test_regression_document_names_the_violation(self, run, tmp_path):
        _, metrics, _ = run
        slowed = TestDiff()._rewrite(metrics, tmp_path / "slow.jsonl",
                                     scale=2.0)
        text = run_cli("obs", "diff", metrics, slowed,
                       "--metric", "web.crawl.latency_ms.*",
                       "--json", expect=1)
        document = json.loads(text)
        assert document["ok"] is False
        assert document["violations"] >= 1
        bad = [delta for delta in document["deltas"]
               if delta["violation"]]
        assert any(delta["name"].startswith("web.crawl.latency_ms")
                   for delta in bad)

    def test_infinite_relative_stays_strict_json(self, run, tmp_path):
        """A counter appearing from a zero baseline has infinite
        relative change; the JSON document must stay loadable by a
        strict parser (no bare Infinity tokens)."""
        from repro.state.atomic import atomic_write_jsonl

        _, metrics, _ = run
        baseline = tmp_path / "zeroed.jsonl"
        records = []
        for record in read_jsonl(metrics):
            if record.get("type") == "counter":
                record = dict(record)
                record["value"] = 0
            records.append(record)
        atomic_write_jsonl(str(baseline), records)
        text = run_cli("obs", "diff", str(baseline), metrics, "--json",
                       expect=1)
        assert "Infinity" not in text
        document = json.loads(text)
        assert any(delta["relative"] == "inf"
                   for delta in document["deltas"])


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("obs-cli-telemetry")
    ts = str(tmp / "run.ts.jsonl")
    flight = str(tmp / "run.flight.jsonl")
    run_cli(*ARGS, "--timeseries-out", ts, "--flight-out", flight)
    return ts, flight


class TestWatchAndTimeline:
    def test_watch_once_renders_latest_sample(self, telemetry_run):
        ts, _ = telemetry_run
        text = run_cli("obs", "watch", "--once", ts)
        lines = text.splitlines()
        assert lines[0].startswith(f"== {ts}")
        assert "(sealed)" in lines[0]           # clean run closed it
        assert "tick " in text
        assert "run.progress.units_done" in text

    def test_watch_metric_filter(self, telemetry_run):
        ts, _ = telemetry_run
        text = run_cli("obs", "watch", "--once", ts,
                       "--metric", "run.progress.*")
        assert "run.progress.units_done" in text
        assert "web.crawl.latency_ms" not in text

    def test_watch_missing_file_fails_cleanly(self):
        text = run_cli("obs", "watch", "--once", "/no/such/ts.jsonl",
                       expect=2)
        assert text.startswith("error:")

    def test_timeline_sparkles_progress(self, telemetry_run):
        ts, _ = telemetry_run
        text = run_cli("obs", "timeline", ts)
        assert "ticks" in text.splitlines()[0]
        assert "run.progress.units_done" in text
        assert "last=" in text

    def test_flight_renders_clean_exit(self, telemetry_run):
        _, flight = telemetry_run
        text = run_cli("obs", "flight", flight)
        assert "reason=exit" in text.splitlines()[0]

    def test_flight_missing_file_fails_cleanly(self):
        text = run_cli("obs", "flight", "/no/such/flight.jsonl",
                       expect=2)
        assert text.startswith("error:")
