"""Telemetry must never perturb results, and must itself be deterministic.

Two contracts from the telemetry plane's acceptance criteria:

* the simulated-clock time-series export is **byte-identical at any
  worker count and under either scheduler** (tick boundaries are a pure
  function of the workload, accumulated in global unit order);
* turning telemetry on changes *nothing* about the survey's own
  artifacts — the ``--metrics-out`` export is byte-identical with and
  without ``--timeseries-out``/``--flight-out`` riding along.

Plus the flight recorder's post-mortem story: a deterministic
kill schedule must be reconstructable from the dumped event ring.
"""

import io
import random

import pytest

from repro.cli import main
from repro.measurement.survey import (build_engines, build_samples,
                                      make_profile_factory)
from repro.obs import FlightRecorder, observe
from repro.obs.analyze import load_flight
from repro.obs.export import list_segments
from repro.parallel.scheduler import StealStats, run_stealing_survey
from repro.parallel.supervisor import WorkerCrashInjector
from repro.web.crawler import Crawler
from repro.web.faults import FaultInjector, FaultPlan
from repro.web.resilience import RetryPolicy

ARGS = ("survey", "--top", "20", "--stratum", "5", "--fast",
        "--fault-rate", "0.3", "--fault-seed", "7")


def run_cli(*argv: str, expect: int = 0) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == expect, out.getvalue()
    return out.getvalue()


def stream_bytes(path: str) -> bytes:
    segments = list_segments(path)
    assert segments, f"no segments written for {path}"
    return b"".join(open(segment, "rb").read() for segment in segments)


def survey_with_telemetry(tmp, tag: str, *extra: str) -> tuple[bytes, bytes]:
    """Run the CLI survey with telemetry; returns (timeseries, metrics)
    bytes."""
    ts = str(tmp / f"{tag}.ts.jsonl")
    metrics = str(tmp / f"{tag}.m.jsonl")
    run_cli(*ARGS, *extra, "--timeseries-out", ts,
            "--metrics-out", metrics)
    return stream_bytes(ts), open(metrics, "rb").read()


@pytest.fixture(scope="module")
def tmp(tmp_path_factory):
    return tmp_path_factory.mktemp("telemetry")


@pytest.fixture(scope="module")
def baseline(tmp):
    """The one-worker run every other placement must reproduce."""
    return survey_with_telemetry(tmp, "w1", "--workers", "1")


class TestTimeseriesByteIdentity:
    @pytest.mark.parametrize("workers", ["2", "8"])
    def test_shard_pool_matches_single_worker(self, tmp, baseline,
                                              workers):
        ts, metrics = survey_with_telemetry(
            tmp, f"w{workers}", "--workers", workers)
        assert ts == baseline[0]
        assert metrics == baseline[1]

    @pytest.mark.parametrize("workers", ["2", "8"])
    def test_stealing_scheduler_matches_single_worker(self, tmp, baseline,
                                                      workers):
        ts, metrics = survey_with_telemetry(
            tmp, f"steal{workers}", "--workers", workers,
            "--scheduler", "steal")
        assert ts == baseline[0]
        assert metrics == baseline[1]

    def test_timeseries_has_progress_gauges(self, tmp, baseline):
        import json

        lines = baseline[0].decode("utf-8").strip().splitlines()
        samples = [json.loads(line) for line in lines
                   if '"sample"' in line]
        assert samples, "survey emitted no time-series samples"
        gauges = samples[-1]["metrics"]
        stage_keys = [key for key in gauges
                      if key.startswith("run.progress.units_done")]
        assert stage_keys, gauges.keys()


class TestTelemetryIsInvisible:
    def test_metrics_identical_with_and_without_telemetry(self, tmp,
                                                          baseline):
        """The observer effect gate: telemetry riding along must not
        change one byte of the run's own metrics export."""
        bare = str(tmp / "bare.m.jsonl")
        run_cli(*ARGS, "--workers", "2", "--metrics-out", bare)
        assert open(bare, "rb").read() == baseline[1]


@pytest.fixture(scope="module")
def steal_setup(history):
    groups = build_samples(history.population.ranking,
                           top_n=20, stratum_size=5)
    engine, _easylist, _whitelist = build_engines(history)
    profiles = make_profile_factory(history)

    def crawler_factory() -> Crawler:
        rng = random.Random(7)
        return Crawler(engine, profile_factory=profiles,
                       retry_policy=RetryPolicy(max_attempts=3),
                       fault_injector=FaultInjector(
                           FaultPlan.uniform(0.3, rng=rng)),
                       rng=rng)

    return groups, crawler_factory


class TestFlightReconstructsKillSchedule:
    def test_kill_schedule_event_sequence(self, steal_setup, tmp_path):
        """A deterministic kill schedule must be readable back out of
        the flight dump: the doomed slot spawns, is granted a lease,
        dies, forfeits the lease, and a replacement spawns."""
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        groups, factory = steal_setup
        path = str(tmp_path / "flight.jsonl")
        flight = FlightRecorder(path=path, run_id="kill-run")
        stats = StealStats()
        injector = WorkerCrashInjector(kill_after={0: 2})
        with observe(flight=flight):
            run_stealing_survey(groups, crawler_factory=factory,
                                workers=3, jitter_seed=7, stats=stats,
                                crash_injector=injector)
            flight.dump(reason="exit")
        assert stats.worker_deaths == 1

        dump = load_flight(path)
        events = dump.events
        kinds = [event["kind"] for event in events]
        # Three initial spawns plus one respawn for the killed slot.
        spawn_slots = [event["attrs"]["slot"] for event in events
                       if event["kind"] == "worker.spawn"]
        assert spawn_slots.count(0) == 2
        assert sorted(set(spawn_slots)) == [0, 1, 2]
        assert "lease.grant" in kinds
        # The injected death shows up as an exit event for slot 0 and
        # the forfeited lease is explicitly revoked.
        deaths = [event for event in events
                  if event["kind"] in ("worker.exit", "worker.timeout")]
        assert any(event["attrs"]["slot"] == 0 for event in deaths)
        revokes = [event for event in events
                   if event["kind"] == "lease.revoke"]
        assert revokes, kinds
        # Ordering: the doomed slot's death precedes its respawn.
        death_seq = min(event["seq"] for event in deaths
                        if event["attrs"]["slot"] == 0)
        respawn_seq = max(event["seq"] for event in events
                          if event["kind"] == "worker.spawn"
                          and event["attrs"]["slot"] == 0)
        assert death_seq < respawn_seq

        # The CLI renders the same story from the artifact alone.
        text = run_cli("obs", "flight", path)
        assert "reason=exit" in text
        assert "worker.spawn" in text
        assert "lease.revoke" in text

    def test_flight_kind_filter(self, steal_setup, tmp_path):
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        groups, factory = steal_setup
        path = str(tmp_path / "flight.jsonl")
        flight = FlightRecorder(path=path, run_id="clean-run")
        with observe(flight=flight):
            run_stealing_survey(groups, crawler_factory=factory,
                                workers=2, jitter_seed=7)
            flight.dump(reason="exit")
        text = run_cli("obs", "flight", path, "--kind", "worker.*")
        body = text.splitlines()[1:]
        assert any("worker.spawn" in line for line in body)
        assert not any("lease.grant" in line for line in body)
