"""Integration: analyses run identically on archived-and-reloaded history."""

from repro.history.afilters import mine_a_filters
from repro.history.analysis import growth_series, yearly_activity
from repro.history.archive import load_repository, save_repository


class TestAnalysesOnReloadedHistory:
    def test_table1_identical(self, history, tmp_path):
        path = save_repository(history.repository, tmp_path / "h.jsonl")
        reloaded = load_repository(path)
        original = yearly_activity(history.repository)
        replayed = yearly_activity(reloaded)
        assert [
            (r.year, r.revisions, r.filters_added, r.filters_removed,
             r.domains_added, r.domains_removed) for r in original
        ] == [
            (r.year, r.revisions, r.filters_added, r.filters_removed,
             r.domains_added, r.domains_removed) for r in replayed
        ]

    def test_growth_identical(self, history, tmp_path):
        path = save_repository(history.repository, tmp_path / "h.jsonl")
        reloaded = load_repository(path)
        assert [p.filters for p in growth_series(reloaded)] == \
            [p.filters for p in growth_series(history.repository)]

    def test_a_filters_identical(self, history, tmp_path):
        path = save_repository(history.repository, tmp_path / "h.jsonl")
        reloaded = load_repository(path)
        original = mine_a_filters(history.repository)
        replayed = mine_a_filters(reloaded)
        assert set(original.groups) == set(replayed.groups)
        for number, group in original.groups.items():
            twin = replayed.groups[number]
            assert group.filters == twin.filters
            assert group.removed_rev == twin.removed_rev
            assert group.readded_as == twin.readded_as

    def test_archive_is_humanly_greppable(self, history, tmp_path):
        """The archive is JSON-lines: standard text tooling works."""
        path = save_repository(history.repository, tmp_path / "h.jsonl")
        text = path.read_text()
        assert text.count("\n") == 990  # header + 989 changesets
        assert '"Updated whitelists."' in text
