"""Integration tests across the full stack."""

from repro.filters.engine import Verdict
from repro.filters.options import ContentType
from repro.measurement.survey import WHITELIST_NAME, build_engines
from repro.web.browser import InstrumentedBrowser
from repro.web.sites import PINNED_PROFILES
from repro.web.url import parse_url


class TestRedditScenario:
    """Section 2's worked example, end to end on the generated lists."""

    def test_adzerk_frame_allowed_on_reddit(self, history):
        engine, _, _ = build_engines(history)
        decision = engine.check_request(
            "http://static.adzerk.net/ads.html?sr=reddit.com",
            ContentType.SUBDOCUMENT, "www.reddit.com",
            "static.adzerk.net")
        assert decision.verdict is Verdict.ALLOW

    def test_adzerk_blocked_elsewhere(self, history):
        engine, _, _ = build_engines(history)
        decision = engine.check_request(
            "http://static.adzerk.net/ads.html?sr=other.com",
            ContentType.SUBDOCUMENT, "www.other.com",
            "static.adzerk.net")
        assert decision.verdict is Verdict.BLOCK

    def test_full_reddit_visit(self, history):
        engine, _, _ = build_engines(history)
        browser = InstrumentedBrowser(engine)
        visit = browser.visit(PINNED_PROFILES["reddit.com"])
        assert visit.blocked_count == 0
        whitelists = {a.filter_text for a in visit.activations
                      if a.list_name == WHITELIST_NAME}
        assert whitelists

    def test_reddit_sponsored_link_not_hidden(self, history):
        engine, _, _ = build_engines(history)
        browser = InstrumentedBrowser(engine)
        visit = browser.visit(PINNED_PROFILES["reddit.com"])
        hidden_ids = {el.element_id for el in visit.hidden}
        assert "ad_main" not in hidden_ids


class TestGstaticNeedlessActivation:
    def test_gstatic_exception_always_needless(self, history):
        engine, _, _ = build_engines(history)
        engine.recording = True
        engine.check_request(
            "http://fonts.gstatic.com/s/roboto/v15/font.woff",
            ContentType.OTHER, "www.youtube.com", "fonts.gstatic.com")
        gstatic = [a for a in engine.activations
                   if "gstatic" in a.filter_text]
        assert gstatic
        assert all(a.needless for a in gstatic)


class TestWhitelistToggle:
    def test_whitelist_flips_block_to_allow(self, history):
        url = "http://stats.g.doubleclick.net/dc.js"
        host = parse_url(url).host

        with_wl, _, _ = build_engines(history, with_whitelist=True)
        without, _, _ = build_engines(history, with_whitelist=False)
        allowed = with_wl.check_request(url, ContentType.SCRIPT,
                                        "www.toyota.com", host)
        blocked = without.check_request(url, ContentType.SCRIPT,
                                        "www.toyota.com", host)
        assert allowed.verdict is Verdict.ALLOW
        assert blocked.verdict is Verdict.BLOCK


class TestHistoryToSurveyConsistency:
    def test_survey_filters_exist_in_tip(self, study, site_survey):
        tip = set(study.history.tip_lines())
        from repro.measurement.stats import table4_top_filters

        for row in table4_top_filters(site_survey.top5k, top=20):
            assert row.filter_text in tip, row.filter_text

    def test_bold_domains_are_directory_members(self, study, site_survey):
        directory = study.history.publisher_directory
        from repro.web.sites import PINNED_PROFILES as pinned

        for record in site_survey.top5k:
            if record.profile.is_whitelisted_publisher and \
                    record.domain not in pinned:
                assert (record.domain in directory
                        or f"www.{record.domain}" in directory), \
                    record.domain


class TestParkedDomainThroughEngine:
    def test_parked_page_fully_allowed_with_sitekey(self, history):
        from repro.sitekey.parking import PARKING_SERVICES, \
            ParkedDomainServer
        from repro.sitekey.protocol import verify_presented_key
        from repro.web.http import HttpClient

        sedo = next(s for s in PARKING_SERVICES if s.name == "Sedo")
        server = ParkedDomainServer(sedo, key_bits=128)
        handler = server.handler()
        client = HttpClient(lambda h: handler)
        response = client.get("http://some-parked-name.com/")
        verification = verify_presented_key(
            response.adblock_key_header, "/", "some-parked-name.com",
            client.user_agent)
        assert verification.valid

        engine, _, _ = build_engines(history)
        privileges = engine.document_privileges(
            "http://some-parked-name.com/", "some-parked-name.com",
            sitekey=verification.sitekey)
        assert privileges.allow_all
