"""Acceptance tests for the fault-injection + resilient crawl pipeline.

Covers the PR's acceptance criteria end to end: a 1,000-domain crawl
with 20% injected faults completes without raising and reports
per-error-class counts; a zero-fault survey is byte-identical to the
pre-resilience crawler on the Figure 6/7 outputs; the micro-benchmark
harness is smoke-invoked so it cannot rot.
"""

from __future__ import annotations

import random

import pytest

from repro.filters.engine import AdblockEngine
from repro.filters.filterlist import parse_filter_list
from repro.measurement.stats import (
    figure6_site_matches,
    figure7_ecdf,
    table4_top_filters,
)
from repro.measurement.survey import (
    SurveyConfig,
    SurveyResult,
    build_engines,
    make_profile_factory,
    run_survey,
)
from repro.reporting.tables import render_crawl_health, render_table
from repro.web.browser import InstrumentedBrowser
from repro.web.crawler import (
    Crawler,
    CrawlRecord,
    CrawlStatus,
    CrawlTarget,
    crawl_health,
)
from repro.web.faults import FaultInjector, FaultPlan


def simple_engine() -> AdblockEngine:
    engine = AdblockEngine()
    engine.subscribe(parse_filter_list(
        "||adzerk.net^$third-party\n||doubleclick.net^",
        name="easylist"))
    return engine


class TestThousandDomainFaultySurvey:
    """Acceptance: 1,000 targets, 20% faults, no raise, full accounting."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        rng = random.Random(2015)
        injector = FaultInjector(FaultPlan.uniform(0.20, rng=rng))
        crawler = Crawler(simple_engine(), fault_injector=injector,
                          rng=rng)
        targets = [CrawlTarget(domain=f"survey{i}.com", rank=i + 1,
                               group_index=i % 4)
                   for i in range(1_000)]
        return crawler.survey(targets)

    def test_completes_with_one_outcome_per_target(self, outcomes):
        assert len(outcomes) == 1_000
        assert [o.target.rank for o in outcomes] == list(range(1, 1_001))

    def test_fault_rate_visible_in_outcomes(self, outcomes):
        touched = [o for o in outcomes
                   if o.status is not CrawlStatus.SUCCESS
                   or o.attempts > 1]
        # ~20% of domains carry a fault; retries recover a chunk of them.
        assert 0.12 <= len(touched) / len(outcomes) <= 0.28

    def test_tombstones_carry_error_classes(self, outcomes):
        tombstones = [o for o in outcomes if o.is_tombstone]
        assert tombstones
        assert all(o.error_class for o in tombstones)
        assert all(o.record is None for o in tombstones)

    def test_health_reports_per_error_class_counts(self, outcomes):
        health = crawl_health(outcomes)
        assert health.total == 1_000
        assert health.succeeded + health.degraded + health.failed == 1_000
        classes = set(health.failure_counts) | set(health.recovered_counts)
        # The uniform mix injects many modes; several must be visible.
        assert len(classes) >= 4
        assert sum(health.failure_counts.values()) == health.failed
        assert sum(health.recovered_counts.values()) == health.degraded

    def test_health_table_renders_every_class(self, outcomes):
        health = crawl_health(outcomes)
        table = render_crawl_health(health)
        for label in health.failure_counts:
            assert f"failed: {label}" in table
        for label in health.recovered_counts:
            assert f"recovered: {label}" in table
        assert "success" in table and "degraded" in table

    def test_downstream_stats_use_survivor_denominator(self, outcomes):
        records = [o.record for o in outcomes if o.record is not None]
        assert 0 < len(records) < 1_000
        assert table4_top_filters(records) == []  # no whitelist loaded
        ecdf = figure7_ecdf(records)
        assert ecdf.activating_domains == 0


def pre_resilience_survey(history, config: SurveyConfig) -> SurveyResult:
    """Replica of the pre-PR ``run_survey``: bare visit loops."""
    from repro.measurement.samples import build_samples

    groups = build_samples(history.population.ranking,
                           top_n=config.top_n,
                           stratum_size=config.stratum_size)
    factory = make_profile_factory(history)
    engine, easylist, whitelist = build_engines(history,
                                                with_whitelist=True)
    result = SurveyResult(groups=groups, whitelist=whitelist,
                          easylist=easylist)

    def bare(an_engine, targets):
        browser = InstrumentedBrowser(an_engine)
        records = []
        for target in targets:
            profile = factory(target)
            records.append(CrawlRecord(target=target,
                                       visit=browser.visit(profile),
                                       profile=profile))
        return records

    for group in groups:
        result.records[group.name] = bare(engine, group.targets)
    engine_plain, _, _ = build_engines(history, with_whitelist=False)
    for group in groups:
        result.records_easylist_only[group.name] = bare(engine_plain,
                                                        group.targets)
    return result


class TestZeroFaultEquivalence:
    """Acceptance: fault_rate=0 reproduces the pre-PR crawler exactly."""

    CONFIG = SurveyConfig(top_n=200, stratum_size=40, fault_rate=0.0)

    @pytest.fixture(scope="class")
    def resilient_result(self, history):
        return run_survey(history, self.CONFIG)

    @pytest.fixture(scope="class")
    def bare_result(self, history):
        return pre_resilience_survey(history, self.CONFIG)

    @staticmethod
    def fig6_render(result: SurveyResult) -> str:
        bars = figure6_site_matches(result, top=50)
        return render_table(
            ("site", "rank", "wl", "el+", "el-"),
            [(b.domain, b.rank, b.whitelist_matches,
              b.easylist_matches_with, b.easylist_matches_without)
             for b in bars])

    def test_figure6_byte_identical(self, resilient_result, bare_result):
        assert self.fig6_render(resilient_result) == \
            self.fig6_render(bare_result)

    def test_figure7_byte_identical(self, resilient_result, bare_result):
        ours = figure7_ecdf(resilient_result.top5k)
        theirs = figure7_ecdf(bare_result.top5k)
        assert ours == theirs

    def test_table4_byte_identical(self, resilient_result, bare_result):
        assert table4_top_filters(resilient_result.top5k, top=10) == \
            table4_top_filters(bare_result.top5k, top=10)

    def test_no_outcome_is_lost_or_degraded(self, resilient_result):
        outcomes = resilient_result.all_outcomes()
        assert outcomes
        assert all(o.status is CrawlStatus.SUCCESS for o in outcomes)
        health = resilient_result.crawl_health()
        assert health.failed == 0
        assert health.total == health.succeeded


class TestFaultySurveyThroughRunSurvey:
    def test_survey_result_accounts_for_losses(self, history):
        config = SurveyConfig(top_n=120, stratum_size=30,
                              fault_rate=0.25, fault_seed=7,
                              max_retries=1,
                              compare_without_whitelist=False)
        result = run_survey(history, config)
        health = result.crawl_health()
        assert health.failed > 0
        assert health.total == sum(
            len(outcomes) for outcomes in result.outcomes.values())
        for group in result.groups:
            losses = sum(1 for o in result.outcomes[group.name]
                         if o.is_tombstone)
            assert len(result.records[group.name]) == \
                len(result.outcomes[group.name]) - losses

    def test_both_configs_see_identical_faults(self, history):
        config = SurveyConfig(top_n=100, stratum_size=25,
                              fault_rate=0.3, fault_seed=11,
                              max_retries=1)
        result = run_survey(history, config)
        for group in result.groups:
            with_wl = [(o.domain, o.status, o.error_class, o.attempts)
                       for o in result.outcomes[group.name]]
            without = [(o.domain, o.status, o.error_class, o.attempts)
                       for o in
                       result.outcomes_easylist_only[group.name]]
            assert with_wl == without


class TestBenchmarkSmoke:
    """Satellite: keep the overhead micro-benchmark importable and sane."""

    def test_compare_overhead_smoke(self):
        from benchmarks.bench_crawl_resilience import compare_overhead

        result = compare_overhead(n=20, repeats=1)
        assert result["targets"] == 20
        assert result["bare_s"] > 0
        assert result["resilient_s"] > 0

    def test_bare_and_resilient_paths_agree(self):
        from benchmarks.bench_crawl_resilience import (
            bare_crawl,
            make_targets,
            resilient_crawl,
        )

        targets = make_targets(25)
        bare = bare_crawl(targets)
        resilient = resilient_crawl(targets)
        assert [r.total_matches for r in bare] == \
            [o.record.total_matches for o in resilient]
