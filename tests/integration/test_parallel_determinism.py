"""Acceptance: ``--workers N`` output is byte-identical for every N.

The shared-nothing executor's contract (see ``docs/PERFORMANCE.md``) is
that worker count is an execution detail, never a result parameter:
outcome projections, rendered crawl-health tables, metric exports, and
the checkpoint journal itself must come out byte-for-byte the same for
``--workers 1``, ``2``, and ``8`` — including when a crashed run is
resumed under a *different* worker count than it started with.
"""

import io
import json
import os

import pytest

from repro.cli import main
from repro.measurement.stats import section51_headline
from repro.measurement.survey import SurveyConfig, run_survey
from repro.obs import (JsonLinesExporter, MetricsRegistry, Tracer, observe,
                       span_records)
from repro.parallel.supervisor import WorkerCrashInjector
from repro.parallel.survey import list_shard_journals
from repro.reporting.tables import render_crawl_health
from repro.state import Checkpoint, CheckpointError, lease_log_path
from repro.state.crashpoints import CrashInjector, SimulatedCrash, crashing
from repro.web.crawlstate import snapshot_outcome

#: Same adversarial shape as the crash-resume suite: 30% injected
#: faults exercise retries and rng-consuming backoff on every worker.
_BASE = dict(top_n=20, stratum_size=5, fault_rate=0.3, fault_seed=7)


def _config(workers):
    return SurveyConfig(**_BASE, workers=workers)


def _steal_config(workers, **overrides):
    return SurveyConfig(**_BASE, workers=workers, scheduler="steal",
                        **overrides)


def _canonical(result) -> str:
    """Everything downstream consumers read, as one comparable string."""
    payload = {
        "with": {group: [snapshot_outcome(o) for o in outcomes]
                 for group, outcomes in result.outcomes.items()},
        "without": {group: [snapshot_outcome(o) for o in outcomes]
                    for group, outcomes
                    in result.outcomes_easylist_only.items()},
    }
    return "\n".join([
        json.dumps(payload, sort_keys=True),
        render_crawl_health(result.crawl_health()),
        repr(section51_headline(result.all_records())),
    ])


@pytest.fixture(scope="module")
def one_worker_baseline(history):
    """The ``--workers 1`` run every other worker count must match."""
    return _canonical(run_survey(history, _config(1)))


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 8])
    def test_output_byte_identical(self, history, one_worker_baseline,
                                   workers):
        assert _canonical(run_survey(history, _config(workers))) == \
            one_worker_baseline

    def test_zero_fault_pool_matches_legacy_serial(self, history):
        """With no faults there is no jitter to draw, so the pool and the
        classic serial loop agree exactly."""
        legacy = SurveyConfig(top_n=20, stratum_size=5, fault_rate=0.0)
        pooled = SurveyConfig(top_n=20, stratum_size=5, fault_rate=0.0,
                              workers=4)
        assert _canonical(run_survey(history, legacy)) == \
            _canonical(run_survey(history, pooled))

    @pytest.mark.parametrize("workers", [2, 8])
    def test_metrics_export_byte_identical(self, history, tmp_path,
                                           workers):
        def export(count, name):
            with observe(registry=MetricsRegistry()) as (registry, _):
                run_survey(history, _config(count))
                path = str(tmp_path / name)
                JsonLinesExporter(path).export(registry=registry)
            with open(path, "rb") as handle:
                return handle.read()

        assert export(workers, f"w{workers}.jsonl") == \
            export(1, f"w1-vs-{workers}.jsonl")

    def test_checkpoint_journal_byte_identical(self, history, tmp_path):
        def journal_bytes(workers, name):
            path = str(tmp_path / name)
            checkpoint = Checkpoint.start(path)
            try:
                run_survey(history, _config(workers),
                           checkpoint=checkpoint)
            finally:
                checkpoint.close()
            assert list_shard_journals(path) == []  # merged and removed
            with open(path, "rb") as handle:
                return handle.read()

        reference = journal_bytes(1, "w1.ckpt")
        assert journal_bytes(4, "w4.ckpt") == reference
        assert journal_bytes(8, "w8.ckpt") == reference


class TestTraceWorkerInvariance:
    """Pool mode keeps per-visit spans, and the merged trace is
    byte-identical for every worker count.

    Unit spans are timed on the per-unit simulated clock (deterministic
    by construction); the parent's own spans are timed on the tracer
    clock, so a deterministic counting clock is injected here — the
    number of parent-side clock reads is itself worker-count-invariant,
    which is part of what this asserts.
    """

    def _trace_bytes(self, history, tmp_path, workers, name):
        ticks = iter(range(1_000_000))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with observe(tracer=tracer):
            run_survey(history, _config(workers))
            path = str(tmp_path / name)
            JsonLinesExporter(path).export(tracer=tracer)
        with open(path, "rb") as handle:
            return handle.read()

    @pytest.mark.parametrize("workers", [2, 8])
    def test_trace_export_byte_identical(self, history, tmp_path,
                                         workers):
        assert self._trace_bytes(history, tmp_path, workers,
                                 f"w{workers}.jsonl") == \
            self._trace_bytes(history, tmp_path, 1,
                              f"w1-vs-{workers}.jsonl")

    def test_pooled_trace_contains_linked_visit_spans(self, history):
        with observe() as (_, tracer):
            run_survey(history, _config(4))
            records = span_records(tracer)
        visits = [r for r in records if r["name"] == "web.crawl.visit"]
        # 35 units x 2 engine configs; the PR-4 "spans are dropped in
        # pool mode" carve-out is gone.
        assert len(visits) == 70
        parallel_ids = {r["span_id"] for r in records
                        if r["name"] == "survey.crawl.parallel"}
        assert len(parallel_ids) == 2
        assert {v["parent_id"] for v in visits} == parallel_ids
        units = sorted(v["attrs"]["unit"] for v in visits)
        assert units == sorted(list(range(35)) * 2)
        # The worker transport tag never survives into the merged trace.
        assert all("worker" not in v for v in visits)
        ids = [r["span_id"] for r in records]
        assert len(set(ids)) == len(ids)


class TestResumeAcrossWorkerCounts:
    def _crash(self, history, path, at_step, workers):
        checkpoint = Checkpoint.start(path)
        try:
            with crashing(CrashInjector(at_step=at_step)):
                with pytest.raises(SimulatedCrash):
                    run_survey(history, _config(workers),
                               checkpoint=checkpoint)
        finally:
            checkpoint.close()

    @pytest.mark.parametrize("at_step", [10, 50])
    def test_resume_with_more_workers_identical(
            self, history, one_worker_baseline, tmp_path, at_step):
        """Crash a one-worker run mid-shard, finish it with eight."""
        path = str(tmp_path / "run.ckpt")
        self._crash(history, path, at_step, workers=1)
        # The crash interrupted shard journaling, so a leftover shard
        # file must exist for the resume to adopt.
        assert list_shard_journals(path)
        resumed = Checkpoint.resume(path)
        assert resumed.resumed
        try:
            result = run_survey(history, _config(8), checkpoint=resumed)
        finally:
            resumed.close()
        assert _canonical(result) == one_worker_baseline
        assert list_shard_journals(path) == []

    def test_resumed_journal_bytes_match_uninterrupted(self, history,
                                                       tmp_path):
        uninterrupted = str(tmp_path / "base.ckpt")
        checkpoint = Checkpoint.start(uninterrupted)
        try:
            run_survey(history, _config(2), checkpoint=checkpoint)
        finally:
            checkpoint.close()

        crashed = str(tmp_path / "crashed.ckpt")
        self._crash(history, crashed, at_step=10, workers=1)
        resumed = Checkpoint.resume(crashed)
        try:
            run_survey(history, _config(2), checkpoint=resumed)
        finally:
            resumed.close()

        with open(uninterrupted, "rb") as handle:
            expected = handle.read()
        with open(crashed, "rb") as handle:
            assert handle.read() == expected

    def test_corrupt_shard_journal_is_discarded_and_recrawled(
            self, history, one_worker_baseline, tmp_path):
        path = str(tmp_path / "run.ckpt")
        self._crash(history, path, at_step=10, workers=1)
        shard_path, = list_shard_journals(path)
        with open(shard_path, "wb") as handle:
            handle.write(b"\x00 garbage, not a journal \x00")
        resumed = Checkpoint.resume(path)
        try:
            result = run_survey(history, _config(4), checkpoint=resumed)
        finally:
            resumed.close()
        assert _canonical(result) == one_worker_baseline
        assert not os.path.exists(shard_path)

    def test_pool_and_legacy_checkpoints_do_not_cross_resume(
            self, history, tmp_path):
        """Serial and shared-nothing runs draw jitter differently, so a
        checkpoint from one must not silently continue as the other."""
        path = str(tmp_path / "run.ckpt")
        self._crash(history, path, at_step=10, workers=1)
        resumed = Checkpoint.resume(path)
        legacy = SurveyConfig(**_BASE)  # workers=None: classic serial
        try:
            with pytest.raises(CheckpointError, match="not be comparable"):
                run_survey(history, legacy, checkpoint=resumed)
        finally:
            resumed.close()


class TestStealSchedulerInvariance:
    """The work-stealing scheduler is an interchangeable executor: its
    results, exports, and finished checkpoints are byte-identical to
    the round-robin pool's — for any worker count, lease size, and
    deterministic kill schedule."""

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_output_byte_identical(self, history, one_worker_baseline,
                                   workers):
        assert _canonical(run_survey(history, _steal_config(workers))) \
            == one_worker_baseline

    def test_lease_size_is_an_execution_detail(self, history,
                                               one_worker_baseline):
        assert _canonical(run_survey(
            history, _steal_config(3, lease_size=1))) == one_worker_baseline

    def test_kill_schedule_is_invisible_in_results(
            self, history, one_worker_baseline):
        injector = WorkerCrashInjector(kill_after={0: 2, 2: 5})
        assert _canonical(run_survey(
            history, _steal_config(4, steal_crash_injector=injector))) \
            == one_worker_baseline

    def test_unknown_scheduler_rejected(self, history):
        with pytest.raises(ValueError, match="unknown scheduler"):
            run_survey(history, SurveyConfig(**_BASE, workers=2,
                                             scheduler="gossip"))

    def test_checkpoint_journal_byte_identical_across_schedulers(
            self, history, tmp_path):
        def journal_bytes(config, name):
            path = str(tmp_path / name)
            checkpoint = Checkpoint.start(path)
            try:
                run_survey(history, config, checkpoint=checkpoint)
            finally:
                checkpoint.close()
            # A clean finish leaves no supervision residue behind.
            assert list_shard_journals(path) == []
            assert not os.path.exists(lease_log_path(path))
            with open(path, "rb") as handle:
                return handle.read()

        reference = journal_bytes(_config(1), "shards-w1.ckpt")
        assert journal_bytes(_steal_config(3), "steal-w3.ckpt") == reference
        killed = _steal_config(
            3, steal_crash_injector=WorkerCrashInjector(kill_after={1: 2}))
        assert journal_bytes(killed, "steal-w3-kill.ckpt") == reference

    def test_metrics_export_byte_identical_across_schedulers(
            self, history, tmp_path):
        def export(config, name):
            with observe(registry=MetricsRegistry()) as (registry, _):
                run_survey(history, config)
                path = str(tmp_path / name)
                JsonLinesExporter(path).export(registry=registry)
            with open(path, "rb") as handle:
                return handle.read()

        reference = export(_config(1), "shards-w1.jsonl")
        killed = _steal_config(
            3, steal_crash_injector=WorkerCrashInjector(kill_after={0: 3}))
        assert export(_steal_config(3), "steal-w3.jsonl") == reference
        assert export(killed, "steal-w3-kill.jsonl") == reference

    def test_trace_export_byte_identical_across_schedulers(
            self, history, tmp_path):
        def trace_bytes(config, name):
            ticks = iter(range(1_000_000))
            tracer = Tracer(clock=lambda: float(next(ticks)))
            with observe(tracer=tracer):
                run_survey(history, config)
                path = str(tmp_path / name)
                JsonLinesExporter(path).export(tracer=tracer)
            with open(path, "rb") as handle:
                return handle.read()

        reference = trace_bytes(_config(1), "shards-w1.jsonl")
        killed = _steal_config(
            3, steal_crash_injector=WorkerCrashInjector(kill_after={1: 4}))
        assert trace_bytes(_steal_config(3), "steal-w3.jsonl") == reference
        assert trace_bytes(killed, "steal-w3-kill.jsonl") == reference


class TestStealResume:
    def _crash_steal(self, history, path, at_step, workers):
        """Crash the *parent* mid-steal: workers disarm the crashpoint
        injector at bootstrap, so the simulated death hits the
        dispatcher's in-order flush, never a worker."""
        checkpoint = Checkpoint.start(path)
        try:
            with crashing(CrashInjector(at_step=at_step)):
                with pytest.raises(SimulatedCrash):
                    run_survey(history, _steal_config(workers),
                               checkpoint=checkpoint)
        finally:
            checkpoint.close()

    def test_parent_crash_mid_steal_resumes_identically(
            self, history, one_worker_baseline, tmp_path):
        path = str(tmp_path / "steal.ckpt")
        self._crash_steal(history, path, at_step=12, workers=3)
        # The crash leaves the supervision residue a resume feeds on:
        # per-incarnation shard journals plus the lease log.
        assert list_shard_journals(path)
        assert os.path.exists(lease_log_path(path))
        resumed = Checkpoint.resume(path)
        try:
            result = run_survey(history, _steal_config(8),
                                checkpoint=resumed)
        finally:
            resumed.close()
        assert _canonical(result) == one_worker_baseline
        assert list_shard_journals(path) == []
        assert not os.path.exists(lease_log_path(path))

    def test_shards_crash_finishes_under_steal(self, history,
                                               one_worker_baseline,
                                               tmp_path):
        """Both executors share one fingerprint, so a checkpoint can
        switch scheduler mid-run — and the journal still comes out
        byte-identical to an uninterrupted run."""
        uninterrupted = str(tmp_path / "base.ckpt")
        checkpoint = Checkpoint.start(uninterrupted)
        try:
            run_survey(history, _steal_config(2), checkpoint=checkpoint)
        finally:
            checkpoint.close()

        crashed = str(tmp_path / "crossed.ckpt")
        checkpoint = Checkpoint.start(crashed)
        try:
            with crashing(CrashInjector(at_step=10)):
                with pytest.raises(SimulatedCrash):
                    run_survey(history, _config(1),
                               checkpoint=checkpoint)
        finally:
            checkpoint.close()
        resumed = Checkpoint.resume(crashed)
        try:
            result = run_survey(history, _steal_config(2),
                                checkpoint=resumed)
        finally:
            resumed.close()
        assert _canonical(result) == one_worker_baseline
        with open(uninterrupted, "rb") as handle:
            expected = handle.read()
        with open(crashed, "rb") as handle:
            assert handle.read() == expected


class TestCliWorkers:
    ARGS = ("survey", "--fast", "--top", "20", "--stratum", "5",
            "--fault-rate", "0.3")

    def _run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        assert code == 0, out.getvalue()
        return out.getvalue()

    def test_workers_flag_output_identical(self):
        serial = self._run(*self.ARGS, "--workers", "1")
        assert self._run(*self.ARGS, "--workers", "4") == serial

    def test_workers_resume_with_different_count(self, tmp_path):
        path = str(tmp_path / "cli.ckpt")
        first = self._run(*self.ARGS, "--workers", "2",
                          "--checkpoint", path)
        resumed = self._run(*self.ARGS, "--workers", "8",
                            "--checkpoint", path, "--resume")
        assert resumed == f"resuming from checkpoint {path}\n" + first


class TestCliStealScheduler:
    ARGS = TestCliWorkers.ARGS

    def _run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        assert code == 0, out.getvalue()
        return out.getvalue()

    def test_steal_flag_output_identical(self):
        serial = self._run(*self.ARGS, "--workers", "1")
        stolen = self._run(*self.ARGS, "--workers", "4",
                           "--scheduler", "steal", "--lease-size", "2")
        assert stolen == serial

    def test_steal_requires_workers(self):
        out = io.StringIO()
        code = main(list(self.ARGS) + ["--scheduler", "steal"], out=out)
        assert code == 2
        assert "--scheduler steal requires --workers" in out.getvalue()

    def test_cross_scheduler_cli_resume(self, tmp_path):
        path = str(tmp_path / "cli.ckpt")
        first = self._run(*self.ARGS, "--workers", "2",
                          "--checkpoint", path)
        resumed = self._run(*self.ARGS, "--workers", "4",
                            "--scheduler", "steal",
                            "--checkpoint", path, "--resume")
        assert resumed == f"resuming from checkpoint {path}\n" + first

    def test_run_id_ignores_scheduler_placement(self, tmp_path):
        """Two invocations differing only in execution placement share
        a run ID — and, in fact, the whole metrics artifact."""
        def metrics_bytes(name, *extra):
            path = tmp_path / name
            self._run(*self.ARGS, "--metrics-out", str(path), *extra)
            return path.read_bytes()

        assert metrics_bytes("steal.jsonl", "--workers", "4",
                             "--scheduler", "steal",
                             "--lease-size", "3",
                             "--max-worker-restarts", "9") == \
            metrics_bytes("shards.jsonl", "--workers", "1")
