"""End-to-end observability: the survey CLI with and without the flags.

The contract under test (docs/OBSERVABILITY.md): a run *without*
``--metrics-out``/``--trace`` is byte-identical to pre-observability
behaviour; a run *with* them appends the summary table and writes
deterministic JSON-lines files — without changing the survey's own
output (Table 4, crawl health) by a single byte.
"""

import io
import json

import pytest

from repro.cli import main
from repro.obs import OBS
from repro.state.atomic import read_jsonl

ARGS = ("survey", "--top", "60", "--stratum", "15", "--fast")


def run_cli(*argv: str) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


@pytest.fixture(scope="module")
def outputs(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("obs")
    metrics_path = tmp / "metrics.jsonl"
    trace_path = tmp / "trace.jsonl"
    plain = run_cli(*ARGS)
    observed = run_cli(*ARGS, "--metrics-out", str(metrics_path),
                       "--trace", str(trace_path))
    return plain, observed, metrics_path, trace_path


class TestByteIdentity:
    def test_headline_and_table4_byte_identical(self, outputs):
        # The survey's own analysis output (headline + Table 4) must
        # not change by a byte when observability is on.  The crawl
        # health table legitimately differs: an enabled registry embeds
        # its metric snapshot there (docs/OBSERVABILITY.md).
        plain, observed, _, _ = outputs
        marker = "Crawl health"
        assert marker in plain and marker in observed
        assert plain.split(marker)[0] == observed.split(marker)[0]

    def test_observed_crawl_health_embeds_metrics(self, outputs):
        plain, observed, _, _ = outputs
        assert "filters.index.probes" in observed
        assert "filters.index.probes" not in plain

    def test_plain_run_mentions_no_observability(self, outputs):
        plain, _, _, _ = outputs
        assert "Observability summary" not in plain
        assert "filters.index" not in plain

    def test_global_state_restored(self, outputs):
        assert OBS.enabled is False


class TestSummaryTable:
    def test_appended_summary_sections(self, outputs):
        _, observed, _, _ = outputs
        assert "Observability summary" in observed
        assert "Where the time went" in observed
        assert "survey.run" in observed
        assert "filters.engine.verdicts{verdict=" in observed


class TestMetricsFile:
    def test_valid_checksummed_jsonl_with_documented_names(self, outputs):
        # read_jsonl verifies the CRC footer and strips it.
        _, _, metrics_path, _ = outputs
        records = read_jsonl(str(metrics_path))
        assert records
        raw_lines = metrics_path.read_text(encoding="utf-8").splitlines()
        assert json.loads(raw_lines[-1])["type"] == "footer"
        assert len(raw_lines) == len(records) + 1
        names = {r["name"] for r in records if r["type"] != "run"}
        for expected in ("filters.parse.lines", "filters.index.probes",
                         "filters.engine.verdicts", "web.crawl.outcomes",
                         "web.crawl.latency_ms",
                         "measurement.survey.targets"):
            assert expected in names, f"missing metric {expected}"

    def test_run_ledger_header_first(self, outputs):
        # The run-ledger header leads both artifacts, with the same
        # derived run ID, so the files correlate without guesswork.
        _, _, metrics_path, trace_path = outputs
        metrics = read_jsonl(str(metrics_path))
        spans = read_jsonl(str(trace_path))
        assert metrics[0]["type"] == "run"
        assert spans[0]["type"] == "run"
        assert metrics[0]["run_id"] == spans[0]["run_id"]
        assert len(metrics[0]["run_id"]) == 16

    def test_metrics_sorted_and_typed(self, outputs):
        _, _, metrics_path, _ = outputs
        records = [r for r in read_jsonl(str(metrics_path))
                   if r["type"] != "run"]
        keys = [(r["name"], r["type"]) for r in records]
        assert keys == sorted(keys)
        assert {r["type"] for r in records} <= {
            "counter", "gauge", "histogram"}

    def test_histogram_buckets_sum_to_count(self, outputs):
        _, _, metrics_path, _ = outputs
        for record in read_jsonl(str(metrics_path)):
            if record["type"] != "histogram":
                continue
            assert record["buckets"][-1]["le"] == "+inf"
            assert sum(b["count"] for b in record["buckets"]) == \
                record["count"]


class TestTraceFile:
    def test_span_tree_shape(self, outputs):
        _, _, _, trace_path = outputs
        spans = [s for s in read_jsonl(str(trace_path))
                 if s["type"] == "span"]
        assert spans[0]["name"] == "survey.run"
        assert spans[0]["depth"] == 0
        names = {s["name"] for s in spans}
        assert {"survey.build_samples", "survey.build_engines",
                "survey.crawl", "web.crawl.visit"} <= names
        # Depth never jumps by more than one between consecutive spans
        # (start-order + depth is enough to rebuild the tree).
        depths = [s["depth"] for s in spans]
        assert all(b <= a + 1 for a, b in zip(depths, depths[1:]))

    def test_span_ids_link_into_a_tree(self, outputs):
        _, _, _, trace_path = outputs
        spans = [s for s in read_jsonl(str(trace_path))
                 if s["type"] == "span"]
        ids = [s["span_id"] for s in spans]
        assert len(set(ids)) == len(ids)
        assert all(len(i) == 16 for i in ids)
        known = set(ids)
        roots = [s for s in spans if s["parent_id"] == ""]
        assert roots == [spans[0]]
        assert all(s["parent_id"] in known for s in spans
                   if s["parent_id"] != "")

    def test_visit_spans_carry_domain_attrs(self, outputs):
        _, _, _, trace_path = outputs
        visits = [s for s in read_jsonl(str(trace_path))
                  if s["type"] == "span"
                  and s["name"] == "web.crawl.visit"]
        assert visits
        assert all(v["attrs"].get("domain") for v in visits)
