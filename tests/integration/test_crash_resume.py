"""Acceptance: kill the pipeline at any step, resume, get identical output.

The crash-safety contract (see ``docs/RESILIENCE.md``) is that a run
killed at an arbitrary journal append — on a clean record boundary or
mid-write (torn tail) — and restarted with ``Checkpoint.resume`` is
byte-identical to an uninterrupted run.  These tests inject
``SimulatedCrash`` at early/late/torn steps of the Section 5 survey and
the history generator, then compare full outcome projections and
rendered outputs against an unjournaled baseline.

Observability stays disabled (the default): a resumed run legitimately
skips re-incrementing counters for replayed units, so metric files are
the one artifact exempt from the byte-identity contract.
"""

import io
import json

import pytest

from repro.cli import main
from repro.history.generator import generate_history
from repro.measurement.stats import section51_headline
from repro.measurement.survey import SurveyConfig, run_survey
from repro.reporting.tables import render_crawl_health
from repro.state import Checkpoint
from repro.state.crashpoints import CrashInjector, SimulatedCrash, crashing
from repro.web.crawlstate import snapshot_outcome

#: Small but adversarial: 30% injected faults exercise retries, breaker
#: trips, and rng-consuming backoff around the crash point.
_CONFIG = SurveyConfig(top_n=20, stratum_size=5, fault_rate=0.3,
                       fault_seed=7)
#: 35 targets x 2 engine configs = 70 unit appends + 2 scope appends.
_LAST_APPEND = 72


def _canonical(result) -> str:
    """Everything downstream consumers read, as one comparable string."""
    payload = {
        "with": {group: [snapshot_outcome(o) for o in outcomes]
                 for group, outcomes in result.outcomes.items()},
        "without": {group: [snapshot_outcome(o) for o in outcomes]
                    for group, outcomes
                    in result.outcomes_easylist_only.items()},
    }
    return "\n".join([
        json.dumps(payload, sort_keys=True),
        render_crawl_health(result.crawl_health()),
        repr(section51_headline(result.all_records())),
    ])


@pytest.fixture(scope="module")
def baseline(history):
    """The uninterrupted, unjournaled run every scenario must match."""
    return _canonical(run_survey(history, _CONFIG))


def _crash_then_resume(history, path, at_step, torn=False):
    checkpoint = Checkpoint.start(path)
    try:
        with crashing(CrashInjector(at_step=at_step, torn=torn)):
            with pytest.raises(SimulatedCrash):
                run_survey(history, _CONFIG, checkpoint=checkpoint)
    finally:
        checkpoint.close()
    resumed = Checkpoint.resume(path)
    assert resumed.resumed
    assert resumed.truncated_tail == torn
    try:
        return run_survey(history, _CONFIG, checkpoint=resumed)
    finally:
        resumed.close()


class TestSurveyCrashResume:
    def test_uninterrupted_checkpointed_run_matches_plain(
            self, history, baseline, tmp_path):
        checkpoint = Checkpoint.start(str(tmp_path / "run.ckpt"))
        try:
            result = run_survey(history, _CONFIG, checkpoint=checkpoint)
        finally:
            checkpoint.close()
        assert _canonical(result) == baseline

    @pytest.mark.parametrize("at_step", [3, _LAST_APPEND - 1])
    def test_kill_and_resume_identical(self, history, baseline, tmp_path,
                                       at_step):
        result = _crash_then_resume(history, str(tmp_path / "run.ckpt"),
                                    at_step)
        assert _canonical(result) == baseline

    def test_torn_write_mid_run_identical(self, history, baseline,
                                          tmp_path):
        result = _crash_then_resume(history, str(tmp_path / "run.ckpt"),
                                    at_step=40, torn=True)
        assert _canonical(result) == baseline

    def test_resume_with_different_config_rejected(self, history,
                                                   tmp_path):
        from repro.state import CheckpointError

        path = str(tmp_path / "run.ckpt")
        _crash_then_resume(history, path, at_step=3)
        resumed = Checkpoint.resume(path)
        other = SurveyConfig(top_n=20, stratum_size=5, fault_rate=0.5,
                             fault_seed=7)
        try:
            with pytest.raises(CheckpointError, match="not be comparable"):
                run_survey(history, other, checkpoint=resumed)
        finally:
            resumed.close()


def _history_fingerprint(history) -> str:
    repo = history.repository
    changesets = [
        (c.rev, c.when.isoformat(), c.message, list(c.added),
         list(c.removed))
        for c in repo.log()
    ]
    return json.dumps({
        "changesets": changesets,
        "tip": history.tip_lines(),
        "publishers": {k: list(v)
                       for k, v in history.publisher_directory.items()},
        "sitekeys": history.sitekeys,
    }, sort_keys=True)


class TestHistoryCrashResume:
    def test_mid_generation_crash_resume_identical(self, history,
                                                   tmp_path):
        path = str(tmp_path / "hist.ckpt")
        checkpoint = Checkpoint.start(path)
        try:
            with crashing(CrashInjector(at_step=300)):
                with pytest.raises(SimulatedCrash):
                    generate_history(seed=2015, key_bits=128,
                                     checkpoint=checkpoint)
        finally:
            checkpoint.close()
        resumed = Checkpoint.resume(path)
        assert resumed.resumed
        try:
            regenerated = generate_history(seed=2015, key_bits=128,
                                           checkpoint=resumed)
        finally:
            resumed.close()
        # The session ``history`` fixture is the uninterrupted baseline
        # (same seed and key size).
        assert _history_fingerprint(regenerated) == \
            _history_fingerprint(history)


class TestCliResume:
    ARGS = ("survey", "--fast", "--top", "20", "--stratum", "5",
            "--fault-rate", "0.3")

    def _run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        assert code == 0, out.getvalue()
        return out.getvalue()

    def test_checkpointed_then_resumed_output_identical(self, tmp_path):
        path = str(tmp_path / "cli.ckpt")
        plain = self._run(*self.ARGS)
        checkpointed = self._run(*self.ARGS, "--checkpoint", path)
        assert checkpointed == plain
        resumed = self._run(*self.ARGS, "--checkpoint", path, "--resume")
        assert resumed == f"resuming from checkpoint {path}\n" + plain

    def test_resume_requires_checkpoint_flag(self):
        out = io.StringIO()
        assert main(["survey", "--fast", "--resume"], out=out) == 2
        assert "--resume requires --checkpoint" in out.getvalue()

    def test_resume_under_different_flags_rejected(self, tmp_path):
        path = str(tmp_path / "cli.ckpt")
        self._run("table1", "--fast", "--checkpoint", path)
        out = io.StringIO()
        code = main(["survey", "--fast", "--top", "20", "--stratum", "5",
                     "--checkpoint", path, "--resume"], out=out)
        assert code == 2
        assert "different run" in out.getvalue()


class TestBenchmarkSmoke:
    """Satellite: keep the checkpoint-overhead benchmark importable."""

    def test_compare_overhead_harness(self):
        from benchmarks.bench_checkpoint_overhead import compare_overhead

        result = compare_overhead(
            SurveyConfig(top_n=10, stratum_size=5, fault_rate=0.2,
                         fault_seed=7), repeats=1)
        assert result["plain_s"] > 0
        assert result["journaled_s"] > 0
