"""Failure-injection tests: hostile inputs across module boundaries."""

import pytest

from repro.filters.engine import AdblockEngine, Verdict
from repro.filters.filterlist import parse_filter_list
from repro.filters.options import ContentType


class TestMalformedListThroughEngine:
    """A list full of garbage must degrade, never crash the engine."""

    GARBAGE = "\n".join([
        "||ok.com^",
        "@@||fine.com^$domain=a.com",
        "##",                       # empty selector
        "||broken^$what-is-this",   # unknown option
        "@@$sitekey=",              # empty sitekey
        "/[bad-regex/",
        "$$$",
        "a" * 5_000,                # oversized junk
    ])

    def test_valid_filters_still_work(self):
        engine = AdblockEngine()
        flist = parse_filter_list(self.GARBAGE, name="mixed")
        assert len(flist.invalid_filters) >= 4
        engine.subscribe(flist)
        decision = engine.check_request(
            "http://ok.com/x", ContentType.IMAGE, "page.com", "ok.com")
        assert decision.verdict is Verdict.BLOCK

    def test_invalid_entries_do_not_match(self):
        engine = AdblockEngine()
        engine.subscribe(parse_filter_list(self.GARBAGE, name="mixed"))
        decision = engine.check_request(
            "http://unrelated.org/", ContentType.IMAGE,
            "page.com", "unrelated.org")
        assert decision.verdict is Verdict.NO_MATCH


class TestHostileServers:
    def test_redirect_loop_counts_as_rejection(self):
        from repro.sitekey.parking import (PARKING_SERVICES, ZoneEntry,
                                           ZoneScanner)
        from repro.web.http import HttpResponse

        sedo = next(s for s in PARKING_SERVICES if s.name == "Sedo")

        def looper(request):
            return HttpResponse(status=302,
                                redirect_to=f"http://{request.url.host}/")

        scanner = ZoneScanner(
            key_bits=128, resolver_overlay={"loop-sedo.com": looper})
        results = scanner.scan(
            [ZoneEntry("loop-sedo.com", sedo.nameservers)])
        assert results["Sedo"].confirmed == 0

    def test_wrong_domain_signature_rejected(self):
        """A parked server replaying another domain's signature fails."""
        from repro.sitekey.parking import (PARKING_SERVICES, ZoneEntry,
                                           ZoneScanner)
        from repro.sitekey.protocol import make_header
        from repro.web.http import Headers, HttpResponse

        sedo = next(s for s in PARKING_SERVICES if s.name == "Sedo")
        key = sedo.keypair(bits=128)
        replayed = make_header("/", "some-other-host.com",
                               "Mozilla/5.0", key)

        def replayer(request):
            return HttpResponse(status=200, headers=Headers(
                [("X-Adblock-Key", replayed)]))

        scanner = ZoneScanner(
            key_bits=128,
            resolver_overlay={"replay-sedo.com": replayer})
        results = scanner.scan(
            [ZoneEntry("replay-sedo.com", sedo.nameservers)])
        assert results["Sedo"].confirmed == 0


class TestCorruptedHistory:
    def test_generator_rejects_impossible_population(self):
        """A population with too few generic publishers must fail loudly
        (pool exhaustion), not silently produce a short whitelist."""
        from repro.history.generator import generate_history
        from repro.measurement.alexa import build_study_population

        population = build_study_population(seed=2015)
        starved = population.__class__(
            ranking=population.ranking,
            publishers=tuple(p for p in population.publishers
                             if p.kind != "generic")[:40],
        )
        with pytest.raises(Exception):
            generate_history(seed=2015, key_bits=128,
                             population=starved)

    def test_repository_refuses_inconsistent_removal(self, history):
        from datetime import date

        from repro.history.repository import RepositoryError

        with pytest.raises(RepositoryError):
            history.repository.commit(
                date(2016, 1, 1), "bad",
                removed=["this line was never added"])


class TestDegenerateSurveys:
    def test_empty_target_list(self, history):
        from repro.measurement.survey import build_engines
        from repro.web.crawler import crawl

        engine, _, _ = build_engines(history)
        assert crawl(engine, []) == []

    def test_stats_on_empty_records(self):
        from repro.measurement.stats import (section51_headline,
                                             table4_top_filters)

        assert table4_top_filters([]) == []
        head = section51_headline([])
        assert head.surveyed == 0
        assert head.whitelist_activation == 0
