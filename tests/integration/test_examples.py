"""Smoke tests: every example script runs end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "allow" in out
        assert "block" in out
        assert "Recorded filter activations" in out

    def test_whitelist_audit_fast(self):
        out = run_example("whitelist_audit.py", "--fast")
        assert "Table 1" in out
        assert "5,936" in out
        assert "A-filter groups: 61" in out
        assert "35 duplicate" in out

    def test_site_survey_small(self):
        out = run_example("site_survey.py", "150", "20")
        assert "whitelist" in out
        assert "Table 4" in out
        assert "stats.g.doubleclick.net" in out

    def test_sitekey_exploit(self):
        out = run_example("sitekey_exploit.py", "48")
        assert "full bypass achieved: True" in out

    def test_publisher_compliance(self):
        out = run_example("publisher_compliance.py")
        assert "application-ready" in out
        assert "0 ad requests blocked" in out

    def test_render_figures(self, tmp_path):
        out = run_example("render_figures.py", str(tmp_path))
        assert "fig3_growth.svg" in out
        for name in ("fig3_growth", "fig7_ecdf", "fig6_matches",
                     "fig9a_attention"):
            assert (tmp_path / f"{name}.svg").exists()

    def test_perception_study(self):
        out = run_example("perception_study.py", "80")
        assert "Figure 9(d)" in out
        assert "NOT distinguishable" in out

    @pytest.mark.parametrize("name", [
        "quickstart.py", "whitelist_audit.py", "site_survey.py",
        "sitekey_exploit.py", "perception_study.py",
        "render_figures.py", "publisher_compliance.py",
    ])
    def test_example_exists_and_documented(self, name):
        path = EXAMPLES / name
        assert path.exists()
        text = path.read_text()
        assert text.startswith("#!/usr/bin/env python3")
        assert '"""' in text
