"""Unit tests for scope classification (Figure 4 / Section 4.2)."""

from repro.filters.classify import (
    ScopeClass,
    classify_filter,
    classify_whitelist,
    explicit_domains,
)
from repro.filters.filterlist import parse_filter_list
from repro.filters.parser import parse_filter


class TestClassifyFilter:
    def test_domain_restricted_request(self):
        flt = parse_filter("@@||adzerk.net/reddit/$domain=reddit.com")
        assert classify_filter(flt) is ScopeClass.RESTRICTED

    def test_restricted_element_exception(self):
        flt = parse_filter("reddit.com#@##ad_main")
        assert classify_filter(flt) is ScopeClass.RESTRICTED

    def test_elemhide_pattern_restriction(self):
        flt = parse_filter("@@||ask.com^$elemhide")
        assert classify_filter(flt) is ScopeClass.RESTRICTED

    def test_unrestricted_request(self):
        flt = parse_filter("@@||pagefair.net^$third-party")
        assert classify_filter(flt) is ScopeClass.UNRESTRICTED

    def test_negated_domains_still_unrestricted(self):
        flt = parse_filter("@@||g.com/ads$domain=~a.com|~b.com")
        assert classify_filter(flt) is ScopeClass.UNRESTRICTED

    def test_unrestricted_element_exception(self):
        flt = parse_filter("#@##influads_block")
        assert classify_filter(flt) is ScopeClass.UNRESTRICTED

    def test_sitekey(self):
        flt = parse_filter("@@$sitekey=MFwwDQ,document")
        assert classify_filter(flt) is ScopeClass.SITEKEY

    def test_sitekey_beats_domain_restriction(self):
        flt = parse_filter("@@||x.com^$sitekey=KEY,domain=a.com")
        assert classify_filter(flt) is ScopeClass.SITEKEY

    def test_blocking_filter_not_an_exception(self):
        flt = parse_filter("||adzerk.net^")
        assert classify_filter(flt) is ScopeClass.NOT_EXCEPTION

    def test_comment_not_an_exception(self):
        flt = parse_filter("! comment")
        assert classify_filter(flt) is ScopeClass.NOT_EXCEPTION


SMALL_WHITELIST = """! test whitelist
@@||adzerk.net/reddit/$subdocument,domain=reddit.com
reddit.com#@##ad_main
@@||google.com/afs/$script,domain=maps.google.com|google.co.uk
@@||pagefair.net^$third-party
@@||tracking.admarketplace.net^$third-party
#@##influads_block
@@$sitekey=AAAA,document
@@$sitekey=AAAA,elemhide
@@$sitekey=BBBB,document
"""


class TestClassifyWhitelist:
    def test_counts(self):
        report = classify_whitelist(parse_filter_list(SMALL_WHITELIST))
        assert report.total_filters == 9
        assert report.restricted == 3
        assert report.unrestricted == 3
        assert report.sitekey_filters == 3

    def test_distinct_sitekeys(self):
        report = classify_whitelist(parse_filter_list(SMALL_WHITELIST))
        assert report.sitekeys == {"AAAA", "BBBB"}

    def test_fq_domains(self):
        report = classify_whitelist(parse_filter_list(SMALL_WHITELIST))
        assert report.fq_domains == {
            "reddit.com", "maps.google.com", "google.co.uk"}

    def test_e2ld_reduction(self):
        report = classify_whitelist(parse_filter_list(SMALL_WHITELIST))
        assert report.effective_second_level_domains == {
            "reddit.com", "google.com", "google.co.uk"}

    def test_unrestricted_element_counted(self):
        report = classify_whitelist(parse_filter_list(SMALL_WHITELIST))
        assert report.unrestricted_element_filters == 1

    def test_restricted_fraction(self):
        report = classify_whitelist(parse_filter_list(SMALL_WHITELIST))
        assert abs(report.restricted_fraction - 3 / 9) < 1e-9

    def test_subdomain_count(self):
        report = classify_whitelist(parse_filter_list(SMALL_WHITELIST))
        assert report.subdomain_count("google.com") == 1


class TestExplicitDomains:
    def test_union_of_restricted_domains(self):
        flist = parse_filter_list(SMALL_WHITELIST)
        domains = explicit_domains(flist.filters)
        assert "reddit.com" in domains
        assert "maps.google.com" in domains

    def test_unrestricted_contribute_nothing(self):
        flist = parse_filter_list("@@||pagefair.net^$third-party")
        assert explicit_domains(flist.filters) == set()


class TestPaperScaleWhitelist:
    """Scope properties of the generated Rev-988 whitelist."""

    def test_sitekey_composition(self, study):
        assert study.scope.sitekey_filters == 25
        assert len(study.scope.sitekeys) == 4

    def test_unrestricted_count(self, study):
        assert study.scope.unrestricted == 156

    def test_single_unrestricted_element_exception(self, study):
        assert study.scope.unrestricted_element_filters == 1

    def test_restricted_majority(self, study):
        assert study.scope.restricted_fraction > 0.85

    def test_fq_domain_count_near_paper(self, study):
        assert 3_300 <= len(study.scope.fq_domains) <= 3_700

    def test_e2ld_count_near_paper(self, study):
        e2lds = study.scope.effective_second_level_domains
        assert 1_900 <= len(e2lds) <= 2_050

    def test_about_subdomain_count(self, study):
        assert study.scope.subdomain_count("about.com") >= 1_044
