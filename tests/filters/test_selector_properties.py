"""Property-based tests for the CSS selector subset (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.selectors import SelectorError, parse_selector
from repro.web.dom import Element

_IDENT = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def _simple(draw):
    kind = draw(st.sampled_from(["tag", "id", "class", "attr"]))
    name = draw(_IDENT)
    if kind == "tag":
        return name, ("tag", name)
    if kind == "id":
        return f"#{name}", ("id", name)
    if kind == "class":
        return f".{name}", ("class", name)
    value = draw(_IDENT)
    return f'[{name}="{value}"]', ("attr", name, value)


def _element_matching(spec) -> Element:
    if spec[0] == "tag":
        return Element(tag=spec[1])
    if spec[0] == "id":
        return Element(tag="div", attributes={"id": spec[1]})
    if spec[0] == "class":
        return Element(tag="div", attributes={"class": spec[1]})
    return Element(tag="div", attributes={spec[1]: spec[2]})


class TestGeneratedSelectors:
    @given(_simple())
    @settings(max_examples=200)
    def test_simple_selector_matches_constructed_element(self, pair):
        text, spec = pair
        selector = parse_selector(text)
        assert selector.matches(_element_matching(spec))

    @given(_simple(), _simple())
    @settings(max_examples=200)
    def test_descendant_combinator(self, outer, inner):
        outer_text, outer_spec = outer
        inner_text, inner_spec = inner
        parent = _element_matching(outer_spec)
        child = parent.append(_element_matching(inner_spec))
        selector = parse_selector(f"{outer_text} {inner_text}")
        assert selector.matches(child)

    @given(_simple(), _simple())
    @settings(max_examples=200)
    def test_child_combinator(self, outer, inner):
        outer_text, outer_spec = outer
        inner_text, inner_spec = inner
        parent = _element_matching(outer_spec)
        child = parent.append(_element_matching(inner_spec))
        assert parse_selector(f"{outer_text} > {inner_text}").matches(
            child)

    @given(st.lists(_simple(), min_size=1, max_size=4))
    @settings(max_examples=150)
    def test_selector_list_matches_any_member(self, pairs):
        text = ", ".join(t for t, _ in pairs)
        selector = parse_selector(text)
        for _, spec in pairs:
            assert selector.matches(_element_matching(spec))

    @given(_simple())
    @settings(max_examples=150)
    def test_no_match_against_unrelated_element(self, pair):
        text, spec = pair
        selector = parse_selector(text)
        other = Element(tag="zzz-unrelated",
                        attributes={"id": "zz", "class": "zz"})
        if spec[0] == "tag" and spec[1] == "zzz-unrelated":
            return
        if spec[0] in ("id", "class") and spec[1] == "zz":
            return
        assert not selector.matches(other)

    @given(st.text(max_size=30))
    @settings(max_examples=300)
    def test_parser_total(self, text):
        try:
            parse_selector(text)
        except SelectorError:
            pass
