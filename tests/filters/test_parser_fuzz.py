"""Property/fuzz suite: ``parse_filter`` never raises, for any input.

The parser's contract (module docstring, Section 8 hygiene audit) is
that every line parses to exactly one ``Filter`` — malformed input
becomes :class:`InvalidFilter` with a structured ``error``, never an
uncaught exception.  Ten thousand seeded random lines — adversarial
mixes of filter metacharacters, truncations of real filters, and raw
unicode noise — pin that contract down.
"""

import random

import pytest

from repro.filters.parser import (
    Comment,
    ElementFilter,
    Filter,
    InvalidFilter,
    RequestFilter,
    parse_filter,
)

SEED = 0xF1172
N_LINES = 10_000

#: Characters weighted toward the grammar's own metacharacters, so the
#: fuzzer spends its budget on almost-valid input rather than noise the
#: tokenizer rejects immediately.
_META = "@|^$#~*!,=./-_"
_ALNUM = "abcXYZ019"
_UNICODE = "\u00fc\u00f1\u03b6\u26a1 \t\u2028"

_REAL_FILTERS = (
    "@@||adserv.genericnet.com/slot/example.com/$script,domain=example.com",
    "@@||google.com/adsense/search/ads.js$domain=a.com|b.com",
    "@@$sitekey=abcdEFGH01234567,document",
    "example.com,~sub.example.com##.ad-banner",
    "#@#div.textad",
    "||banner.example.net^$third-party,image",
    "! Acceptable ads exceptions",
)


def _random_line(rng: random.Random) -> str:
    mode = rng.randrange(4)
    if mode == 0:
        # Pure metacharacter soup.
        pool = _META
    elif mode == 1:
        pool = _META + _ALNUM
    elif mode == 2:
        pool = _META + _ALNUM + _UNICODE
    else:
        # A real filter, truncated or with injected garbage — the
        # Rev-326 failure mode (Section 8) generalised.
        text = rng.choice(_REAL_FILTERS)
        cut = rng.randrange(len(text) + 1)
        if rng.random() < 0.5:
            return text[:cut]
        noise = "".join(rng.choice(_META + _UNICODE)
                        for _ in range(rng.randrange(1, 4)))
        return text[:cut] + noise + text[cut:]
    length = rng.randrange(0, 40)
    return "".join(rng.choice(pool) for _ in range(length))


class TestParserNeverRaises:
    def test_10k_seeded_malformed_lines(self):
        rng = random.Random(SEED)
        invalid = 0
        for i in range(N_LINES):
            line = _random_line(rng)
            try:
                parsed = parse_filter(line)
            except Exception as exc:  # pragma: no cover - the failure
                pytest.fail(
                    f"line {i} ({line!r}) raised {type(exc).__name__}: "
                    f"{exc}")
            assert isinstance(parsed, Filter), line
            assert isinstance(
                parsed, (Comment, RequestFilter, ElementFilter,
                         InvalidFilter)), line
            if isinstance(parsed, InvalidFilter):
                invalid += 1
                assert parsed.error and isinstance(parsed.error, str), line
        # The generator must actually exercise the malformed paths.
        assert invalid > N_LINES // 20

    def test_deterministic_across_runs(self):
        def classify_all():
            rng = random.Random(SEED)
            return [type(parse_filter(_random_line(rng))).__name__
                    for _ in range(500)]

        assert classify_all() == classify_all()

    def test_error_is_structured_not_a_traceback(self):
        parsed = parse_filter("@@$sitekey=")
        if isinstance(parsed, InvalidFilter):
            assert "Traceback" not in parsed.error
