"""Property-based tests for the filter engine (hypothesis)."""

import re
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.index import FilterIndex
from repro.filters.options import ContentType, parse_options
from repro.filters.parser import (
    ElementFilter,
    InvalidFilter,
    RequestFilter,
    parse_filter,
)
from repro.filters.pattern import compile_pattern, extract_keyword

_LABEL = st.text(alphabet=string.ascii_lowercase + string.digits,
                 min_size=1, max_size=8).filter(
                     lambda s: s[0] not in string.digits)
_DOMAIN = st.builds(lambda a, b: f"{a}.{b}", _LABEL,
                    st.sampled_from(["com", "net", "org", "co.uk", "de"]))
_PATH_CHARS = string.ascii_lowercase + string.digits + "/-_."
_PATH = st.text(alphabet=_PATH_CHARS, max_size=20)


class TestParserTotality:
    @given(st.text(max_size=200))
    @settings(max_examples=300)
    def test_parse_filter_never_raises(self, line):
        result = parse_filter(line)
        assert result is not None

    @given(st.text(max_size=120))
    def test_parse_preserves_raw_text(self, line):
        stripped = line.rstrip("\n").strip()
        result = parse_filter(line)
        if not isinstance(result, InvalidFilter) and stripped and \
                not stripped.startswith("["):
            assert result.text == stripped


class TestPatternProperties:
    @given(_DOMAIN, _PATH)
    def test_anchored_host_matches_own_url(self, domain, path):
        pattern = compile_pattern(f"||{domain}^")
        assert pattern.matches(f"http://{domain}/{path}")
        assert pattern.matches(f"https://sub.{domain}/{path}")

    @given(_DOMAIN)
    def test_anchored_host_rejects_prefixed_host(self, domain):
        pattern = compile_pattern(f"||{domain}^")
        assert not pattern.matches(f"http://evil{domain}/")

    @given(st.text(alphabet=_PATH_CHARS, min_size=1, max_size=15))
    def test_literal_pattern_matches_urls_containing_it(self, literal):
        pattern = compile_pattern(literal)
        assert pattern.matches(f"http://x.com/{literal}")

    @given(st.text(alphabet=_PATH_CHARS + "*^|", max_size=20))
    @settings(max_examples=300)
    def test_compilation_never_raises_for_filter_syntax(self, source):
        if not source:
            return
        compile_pattern(source)

    @given(_DOMAIN, _PATH)
    def test_case_insensitive_matching(self, domain, path):
        pattern = compile_pattern(f"||{domain}^")
        assert pattern.matches(f"HTTP://{domain.upper()}/{path}")


class TestKeywordInvariant:
    """The index-correctness invariant: if a pattern has a keyword, the
    keyword appears as a full token of every URL the pattern matches."""

    _TOKEN_RE = re.compile(r"[a-z0-9%]{3,}")

    @given(_DOMAIN, _PATH)
    def test_keyword_is_url_token(self, domain, path):
        source = f"||{domain}/{path}^" if path else f"||{domain}^"
        keyword = extract_keyword(source)
        if not keyword:
            return
        pattern = compile_pattern(source)
        url = f"http://{domain}/{path}"
        if pattern.matches(url):
            assert keyword in self._TOKEN_RE.findall(url.lower())


class TestIndexEquivalence:
    @given(st.lists(_DOMAIN, min_size=1, max_size=8, unique=True),
           _DOMAIN, _PATH)
    @settings(max_examples=150, deadline=None)
    def test_index_equals_linear_scan(self, filter_domains, req_domain,
                                      path):
        filters = []
        for d in filter_domains:
            flt = parse_filter(f"||{d}^$third-party")
            assert isinstance(flt, RequestFilter)
            filters.append(flt)
        index = FilterIndex(filters)
        url = f"http://{req_domain}/{path}"
        linear = {
            f.text for f in filters
            if f.matches(url, ContentType.IMAGE, "page.com", req_domain)
        }
        indexed = {
            f.text for f in index.match_all(
                url, ContentType.IMAGE, "page.com", req_domain)
        }
        assert indexed == linear


class TestOptionProperties:
    @given(st.lists(st.sampled_from(
        ["script", "image", "stylesheet", "object", "subdocument",
         "third-party", "~third-party", "match-case", "donottrack"]),
        min_size=1, max_size=5, unique=True))
    def test_valid_option_lists_parse(self, keywords):
        options = parse_options(",".join(keywords))
        assert options.raw == ",".join(keywords)

    @given(st.lists(_DOMAIN, min_size=1, max_size=5, unique=True))
    def test_domain_option_round_trip(self, domains):
        options = parse_options("domain=" + "|".join(domains))
        assert set(options.domains_include) == set(domains)
        for domain in domains:
            assert options.applies_on_domain(domain)

    @given(_DOMAIN, _DOMAIN)
    def test_unrelated_domain_never_admitted(self, included, other):
        from repro.web.url import is_subdomain_of

        options = parse_options(f"domain={included}")
        if not is_subdomain_of(other, included):
            assert not options.applies_on_domain(other)


class TestElementFilterProperties:
    @given(st.lists(_DOMAIN, min_size=1, max_size=4, unique=True))
    def test_element_domains_round_trip(self, domains):
        flt = parse_filter(",".join(domains) + "##.ad")
        assert isinstance(flt, ElementFilter)
        assert set(flt.domains_include) == set(domains)
        for domain in domains:
            assert flt.applies_on_domain(domain)
