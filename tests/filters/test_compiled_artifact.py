"""Round-trip, rejection, and store-integration tests for the artifact."""

import struct
import zlib

import pytest

from repro.filters.compiled import (
    ARTIFACT_MAGIC,
    ARTIFACT_VERSION,
    CompiledArtifactError,
    parse_artifact,
    serialize_artifact,
)
from repro.filters.engine import EngineSnapshot
from repro.filters.filterlist import parse_filter_list
from repro.filters.options import ContentType
from repro.obs import observe

EASYLIST = """\
||ads.example^$third-party
||track.example/banner
ads/banner^
/pop[0-9]+/
||stats.example^$script
"""
WHITELIST = """\
@@||good.example^$document
@@||partner.example/ads$subdocument
"""


def build_lists():
    return [parse_filter_list(EASYLIST, name="easylist"),
            parse_filter_list(WHITELIST, name="whitelist")]


def build_blob(lists=None, fingerprint="ab" * 4):
    lists = lists or build_lists()
    snapshot = EngineSnapshot.build(lists)
    return snapshot, serialize_artifact(snapshot, fingerprint=fingerprint)


def recrc(body: bytes) -> bytes:
    """Re-checksum a tampered body so only the *content* check trips."""
    return body + struct.pack("<I", zlib.crc32(body))


class TestRoundTrip:
    def test_identity_header(self):
        snapshot, blob = build_blob()
        artifact = parse_artifact(blob)
        assert artifact.epoch == snapshot.epoch
        assert artifact.fingerprint == "abababab"
        assert artifact.index_names == ("blocking", "exceptions")

    def test_rebuilt_snapshot_is_equivalent(self):
        lists = build_lists()
        snapshot, blob = build_blob(lists)
        rebuilt = parse_artifact(blob).build_snapshot(lists)
        assert rebuilt.epoch == snapshot.epoch
        assert rebuilt.blocking.keywords == snapshot.blocking.keywords
        assert rebuilt.exceptions.keywords == snapshot.exceptions.keywords
        urls = ["http://ads.example/x", "http://track.example/banner",
                "http://good.example/", "http://nothing.example/a/ads"]
        for url in urls:
            host = url.split("/")[2]
            assert (rebuilt.blocking.match_first(
                        url, ContentType.IMAGE, "p.example", host)
                    is snapshot.blocking.match_first(
                        url, ContentType.IMAGE, "p.example", host))

    def test_rebuild_verdict_parity_through_engine(self):
        lists = build_lists()
        snapshot, blob = build_blob(lists)
        rebuilt = parse_artifact(blob).build_snapshot(lists)
        for url, content_type, page in [
                ("http://ads.example/1.gif", ContentType.IMAGE, "p.example"),
                ("http://good.example/f", ContentType.SUBDOCUMENT,
                 "good.example"),
                ("http://x.example/ads/banner", ContentType.IMAGE,
                 "p.example")]:
            host = url.split("/")[2]
            fresh = snapshot.session().check_request(
                url, content_type, page_host=page, request_host=host)
            loaded = rebuilt.session().check_request(
                url, content_type, page_host=page, request_host=host)
            assert fresh.verdict == loaded.verdict
            assert ([f.text for f in fresh.blocking]
                    == [f.text for f in loaded.blocking])
            assert ([f.text for f in fresh.exceptions]
                    == [f.text for f in loaded.exceptions])

    def test_stats_shape(self):
        _, blob = build_blob()
        stats = parse_artifact(blob).stats()
        assert set(stats) == {"blocking", "exceptions"}
        assert stats["blocking"]["filters"] == 5


class TestRejection:
    def test_truncations_never_parse(self):
        _, blob = build_blob()
        for cut in (0, 4, len(ARTIFACT_MAGIC), len(blob) // 2,
                    len(blob) - 1):
            with pytest.raises(CompiledArtifactError):
                parse_artifact(blob[:cut])

    def test_bad_magic(self):
        _, blob = build_blob()
        with pytest.raises(CompiledArtifactError, match="magic"):
            parse_artifact(b"XXXXXXXX" + blob[8:])

    def test_bit_flip_fails_crc(self):
        _, blob = build_blob()
        corrupt = bytearray(blob)
        corrupt[len(blob) // 2] ^= 0x01
        with pytest.raises(CompiledArtifactError, match="CRC"):
            parse_artifact(bytes(corrupt))

    def test_version_mismatch(self):
        _, blob = build_blob()
        body = bytearray(blob[:-4])
        struct.pack_into("<I", body, len(ARTIFACT_MAGIC),
                         ARTIFACT_VERSION + 1)
        with pytest.raises(CompiledArtifactError, match="version"):
            parse_artifact(recrc(bytes(body)))

    def test_stale_epoch_rejected(self):
        lists = build_lists()
        _, blob = build_blob(lists)
        grown = [parse_filter_list(EASYLIST + "||late.example^\n",
                                   name="easylist"),
                 parse_filter_list(WHITELIST, name="whitelist")]
        with pytest.raises(CompiledArtifactError, match="stale"):
            parse_artifact(blob).build_snapshot(grown)

    def test_same_shape_different_lists_rejected(self):
        # Same filter *count* (epoch matches) but entirely different
        # patterns: the sampled bucket-assignment check must trip.
        lists = build_lists()
        _, blob = build_blob(lists)
        impostor = [parse_filter_list(
            "||zzz1.other^$third-party\n||zzz2.other/banner\n"
            "other/banner^\n/zzz[0-9]+/\n||zzz3.other^$script\n",
            name="easylist"),
            parse_filter_list(WHITELIST, name="whitelist")]
        assert sum(len(fl) for fl in impostor) == \
            sum(len(fl) for fl in lists)
        with pytest.raises(CompiledArtifactError):
            parse_artifact(blob).build_snapshot(impostor)

    def test_rejections_are_counted(self):
        lists = build_lists()
        _, blob = build_blob(lists)
        corrupt = bytearray(blob)
        corrupt[len(blob) // 2] ^= 0x01
        with observe() as (registry, _):
            with pytest.raises(CompiledArtifactError):
                parse_artifact(bytes(corrupt))
        assert registry.flat()[
            "filters.index.automaton_artifact{event=rejected}"] == 1


class TestStoreIntegration:
    def make_store(self, tmp_path):
        from repro.state.snapshots import SnapshotStore
        return SnapshotStore(str(tmp_path / "store"))

    SOURCES = [("easylist", EASYLIST), ("whitelist", WHITELIST)]

    def test_persist_then_boot_loads_artifact(self, tmp_path):
        from repro.serve.reload import (build_snapshot_from_sources,
                                        persist_snapshot_artifact)
        store = self.make_store(tmp_path)
        snapshot = build_snapshot_from_sources(self.SOURCES)
        persist_snapshot_artifact(store, snapshot, self.SOURCES)
        with observe() as (registry, _):
            loaded = build_snapshot_from_sources(self.SOURCES, store)
        flat = registry.flat()
        assert flat[
            "filters.index.automaton_artifact{event=load_hit}"] == 1
        assert ("filters.index.automaton_builds"
                "{index=blocking,source=artifact}") in flat
        assert loaded.epoch == snapshot.epoch
        assert loaded.blocking.keywords == snapshot.blocking.keywords

    def test_absent_blob_counts_a_miss_and_builds(self, tmp_path):
        from repro.serve.reload import build_snapshot_from_sources
        store = self.make_store(tmp_path)
        with observe() as (registry, _):
            snapshot = build_snapshot_from_sources(self.SOURCES, store)
        assert snapshot.filter_count == 7
        assert registry.flat()[
            "filters.index.automaton_artifact{event=load_miss}"] == 1

    def test_corrupt_blob_falls_back_to_build(self, tmp_path):
        from repro.serve.reload import (build_snapshot_from_sources,
                                        persist_snapshot_artifact)
        from repro.state.snapshots import content_fingerprint
        store = self.make_store(tmp_path)
        snapshot = build_snapshot_from_sources(self.SOURCES)
        persist_snapshot_artifact(store, snapshot, self.SOURCES)
        fingerprint = content_fingerprint(self.SOURCES)
        epoch, payload = store.load_blob(fingerprint)
        corrupt = bytearray(payload)
        corrupt[len(payload) // 2] ^= 0x10
        store.save_blob(epoch, fingerprint, bytes(corrupt))
        loaded = build_snapshot_from_sources(self.SOURCES, store)
        assert loaded.epoch == snapshot.epoch      # built from scratch
        assert loaded.blocking.keywords == snapshot.blocking.keywords

    def test_blob_for_other_lists_is_not_found(self, tmp_path):
        from repro.serve.reload import (build_snapshot_from_sources,
                                        persist_snapshot_artifact)
        store = self.make_store(tmp_path)
        snapshot = build_snapshot_from_sources(self.SOURCES)
        persist_snapshot_artifact(store, snapshot, self.SOURCES)
        other = [("easylist", "||different.example^")]
        loaded = build_snapshot_from_sources(other, store)
        assert loaded.epoch == 1                   # fresh build, no blob

    def test_reload_churn_persists_and_reuses_artifacts(self, tmp_path):
        import os
        from repro.serve.reload import Reloader, SnapshotHolder
        store = self.make_store(tmp_path)
        holder = SnapshotHolder.from_sources(self.SOURCES, store)
        reloader = Reloader(holder, store=store)
        other = [("easylist", EASYLIST + "||extra.example^\n")]
        for _ in range(3):                         # churn back and forth
            assert reloader.reload(other).status == "swapped"
            assert reloader.reload(self.SOURCES).status == "swapped"
        blobs = [name for name in os.listdir(store.directory)
                 if name.endswith(".cidx")]
        assert len(blobs) == 2                     # one per distinct content
        with observe() as (registry, _):
            assert reloader.reload(other).status == "swapped"
        assert registry.flat()[
            "filters.index.automaton_artifact{event=load_hit}"] == 1

    def test_blob_kind_validated(self, tmp_path):
        from repro.state.snapshots import SnapshotStoreError
        store = self.make_store(tmp_path)
        with pytest.raises(SnapshotStoreError):
            store.save_blob(1, "ab" * 4, b"x", kind="../evil")
