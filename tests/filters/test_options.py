"""Unit tests for filter-option parsing (Appendix A.4)."""

import pytest

from repro.filters.options import (
    ContentType,
    OptionError,
    TriState,
    parse_options,
)


class TestTypeOptions:
    def test_single_type(self):
        options = parse_options("script")
        assert options.include_types == ContentType.SCRIPT

    def test_multiple_types(self):
        options = parse_options("script,image")
        assert options.include_types == ContentType.SCRIPT | ContentType.IMAGE

    def test_negated_type_excludes(self):
        options = parse_options("~image")
        assert options.exclude_types == ContentType.IMAGE
        assert not options.include_types

    def test_effective_mask_with_includes(self):
        options = parse_options("script")
        assert options.effective_mask() == ContentType.SCRIPT

    def test_effective_mask_with_excludes(self):
        options = parse_options("~script")
        mask = options.effective_mask()
        assert not mask & ContentType.SCRIPT
        assert mask & ContentType.IMAGE

    def test_default_mask_excludes_document_and_elemhide(self):
        mask = ContentType.default_mask()
        assert not mask & ContentType.DOCUMENT
        assert not mask & ContentType.ELEMHIDE

    def test_document_must_be_explicit(self):
        options = parse_options("document")
        assert options.applies_to_type(ContentType.DOCUMENT)
        default = parse_options("script")
        assert not default.applies_to_type(ContentType.DOCUMENT)

    def test_all_named_types_parse(self):
        for keyword in ("script", "image", "stylesheet", "object",
                        "xmlhttprequest", "object-subrequest",
                        "subdocument", "document", "elemhide", "other"):
            options = parse_options(keyword)
            assert options.include_types, keyword

    def test_deprecated_options_tracked(self):
        options = parse_options("background,xbl")
        assert set(options.deprecated_used) == {"background", "xbl"}

    def test_case_insensitive_keywords(self):
        options = parse_options("SCRIPT,Image")
        assert options.include_types == ContentType.SCRIPT | ContentType.IMAGE


class TestThirdParty:
    def test_third_party(self):
        assert parse_options("third-party").third_party is TriState.YES

    def test_negated_third_party(self):
        assert parse_options("~third-party").third_party is TriState.NO

    def test_unset_by_default(self):
        assert parse_options("script").third_party is TriState.UNSET


class TestDomainOption:
    def test_single_domain(self):
        options = parse_options("domain=example.com")
        assert options.domains_include == ("example.com",)
        assert options.is_domain_restricted

    def test_multiple_domains(self):
        options = parse_options("domain=a.com|b.com")
        assert options.domains_include == ("a.com", "b.com")

    def test_negated_domain(self):
        options = parse_options("domain=~bad.com")
        assert options.domains_exclude == ("bad.com",)
        assert not options.is_domain_restricted

    def test_mixed_domains(self):
        options = parse_options("domain=a.com|~sub.a.com")
        assert options.domains_include == ("a.com",)
        assert options.domains_exclude == ("sub.a.com",)

    def test_applies_on_included_domain(self):
        options = parse_options("domain=example.com")
        assert options.applies_on_domain("example.com")
        assert options.applies_on_domain("www.example.com")
        assert not options.applies_on_domain("other.com")

    def test_exclusion_beats_broader_inclusion(self):
        options = parse_options("domain=example.com|~ads.example.com")
        assert options.applies_on_domain("example.com")
        assert not options.applies_on_domain("ads.example.com")
        assert not options.applies_on_domain("x.ads.example.com")

    def test_exclusion_only_admits_others(self):
        options = parse_options("domain=~bad.com")
        assert options.applies_on_domain("good.com")
        assert not options.applies_on_domain("bad.com")

    def test_unrestricted_applies_everywhere(self):
        options = parse_options("script")
        assert options.applies_on_domain("anything.example")

    def test_empty_domain_entry_rejected(self):
        with pytest.raises(OptionError):
            parse_options("domain=a.com||b.com")

    def test_bare_negation_rejected(self):
        with pytest.raises(OptionError):
            parse_options("domain=~")

    def test_domains_lowercased(self):
        options = parse_options("domain=Example.COM")
        assert options.domains_include == ("example.com",)


class TestSitekeyOption:
    def test_single_key(self):
        options = parse_options("sitekey=MFwwDQ,document")
        assert options.sitekeys == ("MFwwDQ",)
        assert options.has_sitekey

    def test_multiple_keys(self):
        options = parse_options("sitekey=AAA|BBB")
        assert options.sitekeys == ("AAA", "BBB")

    def test_sitekey_cannot_be_negated(self):
        with pytest.raises(OptionError):
            parse_options("~sitekey=AAA")

    def test_empty_sitekey_rejected(self):
        with pytest.raises(OptionError):
            parse_options("sitekey=")


class TestBehaviouralOptions:
    def test_match_case(self):
        assert parse_options("match-case").match_case

    def test_match_case_cannot_be_negated(self):
        with pytest.raises(OptionError):
            parse_options("~match-case")

    def test_collapse(self):
        assert parse_options("collapse").collapse is TriState.YES
        assert parse_options("~collapse").collapse is TriState.NO

    def test_donottrack(self):
        assert parse_options("donottrack").donottrack

    def test_unknown_option_rejected(self):
        with pytest.raises(OptionError):
            parse_options("frobnicate")

    def test_unknown_valued_option_rejected(self):
        with pytest.raises(OptionError):
            parse_options("widget=3")

    def test_empty_entry_rejected(self):
        with pytest.raises(OptionError):
            parse_options("script,,image")

    def test_whitespace_tolerated(self):
        options = parse_options(" script , image ")
        assert options.include_types == ContentType.SCRIPT | ContentType.IMAGE
