"""Unit tests for the keyword-bucketed filter index."""

from repro.filters.index import FilterIndex
from repro.filters.options import ContentType
from repro.filters.parser import parse_filter


def rf(text):
    flt = parse_filter(text)
    assert type(flt).__name__ == "RequestFilter", text
    return flt


class TestIndexCompleteness:
    def test_keyword_filter_found(self):
        index = FilterIndex([rf("||adzerk.net^$third-party")])
        found = index.match_first(
            "http://static.adzerk.net/x", ContentType.IMAGE,
            "reddit.com", "static.adzerk.net")
        assert found is not None

    def test_fallback_filter_always_probed(self):
        index = FilterIndex([rf("/ad[s]?/")])  # regex: no keyword
        found = index.match_first(
            "http://x.com/ads/1.gif", ContentType.IMAGE, "p.com", "x.com")
        assert found is not None

    def test_no_false_negatives_against_linear_scan(self):
        filters = [
            rf("||adzerk.net^"),
            rf("||googleadservices.com^$third-party"),
            rf("/banner[0-9]+/"),
            rf("||stats.g.doubleclick.net^$script,image"),
            rf("ads/banner^"),
            rf("||example.com/ad.jpg|"),
        ]
        index = FilterIndex(filters)
        urls = [
            "http://static.adzerk.net/reddit/ads.html",
            "http://www.googleadservices.com/pagead/conversion.js",
            "http://x.com/banner12.gif",
            "http://stats.g.doubleclick.net/dc.js",
            "http://y.com/ads/banner?z",
            "http://example.com/ad.jpg",
            "http://nothing.example/",
        ]
        for url in urls:
            for content_type in (ContentType.IMAGE, ContentType.SCRIPT,
                                 ContentType.SUBDOCUMENT):
                linear = {
                    f.text for f in filters
                    if f.matches(url, content_type, "page.com",
                                 _host(url))
                }
                indexed = {
                    f.text
                    for f in index.match_all(url, content_type,
                                             "page.com", _host(url))
                }
                assert indexed == linear, (url, content_type)

    def test_len_and_iter(self):
        filters = [rf("||a-site.com^"), rf("/re/")]
        index = FilterIndex(filters)
        assert len(index) == 2
        assert {f.text for f in index} == {f.text for f in filters}

    def test_candidates_prune_unrelated_buckets(self):
        index = FilterIndex([
            rf("||adzerk.net^"),
            rf("||quantserve.com^"),
            rf("||taboola.com^"),
        ])
        candidates = list(index.candidates("http://adzerk.net/x"))
        assert len(candidates) == 1
        assert candidates[0].text == "||adzerk.net^"

    def test_sitekey_filter_lands_in_fallback(self):
        flt = rf("@@$sitekey=KEY,document")
        index = FilterIndex([flt])
        found = index.match_all("http://anything.com/",
                                ContentType.DOCUMENT,
                                "anything.com", "anything.com",
                                sitekey="KEY")
        assert found == [flt]


class TestInstrumentedTokenisationParity:
    """Regression: the instrumented probe must tokenise exactly like the
    fast path (``_url_tokens``: distinct tokens, first-occurrence order),
    not re-run its own regex with per-occurrence accounting."""

    # 'ads' occurs three times, 'cdn' twice: 5 raw token occurrences,
    # 3 distinct tokens ('ads', 'cdn', 'http' ... plus hosts/paths).
    URL = "http://ads.cdn.example/ads/cdn/ads?x=1"

    def make_index(self):
        return FilterIndex([rf("||ads.cdn.example^"), rf("/fall[0-9]/")])

    def test_enabled_and_disabled_probe_identical_sequences(self):
        from repro.obs import observe
        index = self.make_index()
        bare = list(index.candidates(self.URL))
        with observe():
            instrumented = list(index.candidates(self.URL))
        assert instrumented == bare
        # Repeated-token URL must not duplicate the bucket's filters.
        assert [f.text for f in bare] == ["||ads.cdn.example^",
                                          "/fall[0-9]/"]

    def test_hit_miss_counters_count_distinct_tokens(self):
        from repro.filters.index import _url_tokens
        from repro.obs import observe
        index = self.make_index()
        distinct = _url_tokens(self.URL)
        assert len(distinct) == len(set(distinct))
        with observe() as (registry, _):
            list(index.candidates(self.URL))
        flat = registry.flat()
        assert flat["filters.index.bucket_hits"] == 1   # the one keyword
        assert (flat["filters.index.bucket_hits"]
                + flat["filters.index.bucket_misses"]) == len(distinct)

    def test_url_tokens_is_plain_and_distinct(self):
        from repro.filters.index import _url_tokens
        tokens = _url_tokens(self.URL)
        assert tokens == ("http", "ads", "cdn", "example")
        # No lru_cache wrapper left: nothing to re-warm after fork.
        assert not hasattr(_url_tokens, "cache_info")


def _host(url: str) -> str:
    from repro.web.url import parse_url

    return parse_url(url).host
