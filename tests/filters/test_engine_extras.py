"""Tests for the engine's stylesheet generation and DNT handling."""

from repro.filters.engine import AdblockEngine, Verdict
from repro.filters.filterlist import parse_filter_list
from repro.filters.options import ContentType


def engine_with(blocking: str = "", exceptions: str = "") -> AdblockEngine:
    engine = AdblockEngine()
    if blocking:
        engine.subscribe(parse_filter_list(blocking, name="easylist"))
    if exceptions:
        engine.subscribe(parse_filter_list(exceptions, name="whitelist"))
    return engine


class TestElemhideStylesheet:
    def test_generic_selectors_included(self):
        engine = engine_with("##.banner-ad\n###ad_top")
        css = engine.elemhide_stylesheet("any.example")
        assert ".banner-ad" in css
        assert "#ad_top" in css
        assert "display: none !important" in css

    def test_domain_scoped_selector(self):
        engine = engine_with("reddit.com###siteTable_organic")
        assert "#siteTable_organic" in engine.elemhide_stylesheet(
            "reddit.com")
        assert engine.elemhide_stylesheet("other.com") == ""

    def test_exception_removes_selector(self):
        engine = engine_with("##.banner-ad", "x.com#@#.banner-ad")
        assert engine.elemhide_stylesheet("x.com") == ""
        assert ".banner-ad" in engine.elemhide_stylesheet("y.com")

    def test_privileges_empty_stylesheet(self):
        engine = engine_with("##.banner-ad", "@@||ask.com^$elemhide")
        privileges = engine.document_privileges("http://ask.com/",
                                                "ask.com")
        assert engine.elemhide_stylesheet(
            "ask.com", privileges=privileges) == ""

    def test_duplicate_selectors_deduplicated(self):
        engine = engine_with("##.banner-ad\na.com##.banner-ad")
        css = engine.elemhide_stylesheet("a.com")
        assert css.count(".banner-ad") == 1

    def test_empty_engine_empty_stylesheet(self):
        assert AdblockEngine().elemhide_stylesheet("x.com") == ""


class TestDoNotTrack:
    def test_dnt_requested_by_matching_filter(self):
        engine = engine_with("||tracker.com^$donottrack")
        assert engine.should_send_dnt(
            "http://tracker.com/t.js", ContentType.SCRIPT,
            "page.com", "tracker.com")

    def test_no_dnt_without_match(self):
        engine = engine_with("||tracker.com^$donottrack")
        assert not engine.should_send_dnt(
            "http://benign.com/x.js", ContentType.SCRIPT,
            "page.com", "benign.com")

    def test_dnt_exception_cancels(self):
        engine = engine_with("||tracker.com^$donottrack",
                             "@@||tracker.com^$donottrack")
        assert not engine.should_send_dnt(
            "http://tracker.com/t.js", ContentType.SCRIPT,
            "page.com", "tracker.com")

    def test_dnt_filters_do_not_block(self):
        engine = engine_with("||tracker.com^$donottrack")
        decision = engine.check_request(
            "http://tracker.com/t.js", ContentType.SCRIPT,
            "page.com", "tracker.com")
        assert decision.verdict is Verdict.NO_MATCH

    def test_dnt_exceptions_do_not_allow(self):
        engine = engine_with("||tracker.com^",
                             "@@||tracker.com^$donottrack")
        decision = engine.check_request(
            "http://tracker.com/t.js", ContentType.SCRIPT,
            "page.com", "tracker.com")
        assert decision.verdict is Verdict.BLOCK
