"""Unit tests for the filter-line parser, on the paper's own examples."""

from repro.filters.options import ContentType, TriState
from repro.filters.parser import (
    Comment,
    ElementFilter,
    InvalidFilter,
    RequestFilter,
    parse_filter,
)


class TestBlockingFilters:
    def test_adzerk_blocking_filter(self):
        flt = parse_filter("||adzerk.net^$third-party")
        assert isinstance(flt, RequestFilter)
        assert not flt.is_exception
        assert flt.options.third_party is TriState.YES

    def test_plain_url_filter(self):
        flt = parse_filter("http://example.com/ads/advert777.gif")
        assert isinstance(flt, RequestFilter)
        assert flt.matches("http://example.com/ads/advert777.gif",
                           ContentType.IMAGE, "x.com", "example.com")

    def test_filter_without_options(self):
        flt = parse_filter("/ad-frame/")
        assert isinstance(flt, RequestFilter)
        assert flt.options.raw == ""


class TestExceptionFilters:
    def test_reddit_adzerk_exception(self):
        flt = parse_filter("@@||adzerk.net/reddit/$subdocument,document,"
                           "domain=reddit.com")
        assert isinstance(flt, RequestFilter)
        assert flt.is_exception
        assert flt.restricted_domains == ("reddit.com",)
        assert flt.matches(
            "http://static.adzerk.net/reddit/ads.html",
            ContentType.SUBDOCUMENT, "reddit.com", "static.adzerk.net")
        assert not flt.matches(
            "http://static.adzerk.net/reddit/ads.html",
            ContentType.SUBDOCUMENT, "evil.com", "static.adzerk.net")

    def test_doubleclick_references_example(self):
        flt = parse_filter("@@||g.doubleclick.net/pagead/$subdocument,"
                           "domain=references.net")
        assert isinstance(flt, RequestFilter)
        assert flt.is_exception
        assert flt.restricted_domains == ("references.net",)

    def test_golem_two_domain_filter(self):
        flt = parse_filter(
            "@@||google.com/ads/search/module/ads/*/search.js"
            "$domain=suche.golem.de|www.google.com")
        assert flt.restricted_domains == ("suche.golem.de",
                                          "www.google.com")

    def test_elemhide_privilege_filter_is_pattern_restricted(self):
        flt = parse_filter("@@||ask.com^$elemhide")
        assert isinstance(flt, RequestFilter)
        assert flt.is_domain_restricted
        assert flt.restricted_domains == ("ask.com",)

    def test_mixed_privilege_and_content_not_pattern_restricted(self):
        flt = parse_filter("@@||x.com^$script,elemhide")
        assert flt.restricted_domains == ()


class TestElementFilters:
    def test_element_hide(self):
        flt = parse_filter("##.banner-ad")
        assert isinstance(flt, ElementFilter)
        assert not flt.is_exception
        assert not flt.is_domain_restricted

    def test_reddit_element_exception(self):
        flt = parse_filter("reddit.com#@##ad_main")
        assert isinstance(flt, ElementFilter)
        assert flt.is_exception
        assert flt.domains_include == ("reddit.com",)

    def test_site_table_organic_example(self):
        flt = parse_filter("reddit.com###siteTable_organic")
        assert isinstance(flt, ElementFilter)
        assert not flt.is_exception
        assert flt.selector.matches
        assert flt.applies_on_domain("reddit.com")
        assert not flt.applies_on_domain("example.com")

    def test_multi_domain_element_filter(self):
        flt = parse_filter("mnn.com,streamtuner.me###adv")
        assert flt.domains_include == ("mnn.com", "streamtuner.me")

    def test_negated_element_domain(self):
        flt = parse_filter("example.com,~sub.example.com##.ad")
        assert flt.applies_on_domain("example.com")
        assert not flt.applies_on_domain("sub.example.com")

    def test_unrestricted_element_exception(self):
        # The whitelist's sole unrestricted element exception.
        flt = parse_filter("#@##influads_block")
        assert isinstance(flt, ElementFilter)
        assert flt.is_exception
        assert not flt.is_domain_restricted

    def test_adunit_class_exception(self):
        flt = parse_filter("references.net#@#.adunit")
        assert isinstance(flt, ElementFilter)
        assert flt.is_exception
        assert flt.domains_include == ("references.net",)


class TestSitekeyFilters:
    def test_pure_sitekey_filter(self):
        flt = parse_filter("@@$sitekey=MFwwDQYJKwEAAQ,document")
        assert isinstance(flt, RequestFilter)
        assert flt.is_sitekey
        assert flt.pattern is None
        assert flt.options.sitekeys == ("MFwwDQYJKwEAAQ",)

    def test_sitekey_with_base64_punctuation(self):
        flt = parse_filter("@@$sitekey=MFww+DQ/YJKwEAAQ==,document")
        assert isinstance(flt, RequestFilter)
        assert flt.options.sitekeys == ("MFww+DQ/YJKwEAAQ==",)

    def test_sitekey_matching_requires_key(self):
        flt = parse_filter("@@$sitekey=KEY1,document")
        assert flt.matches("http://any.com/", ContentType.DOCUMENT,
                           "any.com", "any.com", sitekey="KEY1")
        assert not flt.matches("http://any.com/", ContentType.DOCUMENT,
                               "any.com", "any.com", sitekey="KEY2")
        assert not flt.matches("http://any.com/", ContentType.DOCUMENT,
                               "any.com", "any.com")

    def test_sitekey_on_blocking_filter_invalid(self):
        flt = parse_filter("||x.com^$sitekey=KEY")
        assert isinstance(flt, InvalidFilter)


class TestComments:
    def test_plain_comment(self):
        flt = parse_filter("! Some comment")
        assert isinstance(flt, Comment)
        assert flt.body == "Some comment"
        assert flt.a_group is None

    def test_a_group_marker(self):
        flt = parse_filter("!A29")
        assert isinstance(flt, Comment)
        assert flt.a_group == 29

    def test_forum_link_detection(self):
        flt = parse_filter("! PageFair - https://adblockplus.org/forum/"
                           "viewtopic.php?f=12&t=2023")
        assert flt.forum_link is not None

    def test_header_treated_as_metadata_comment(self):
        flt = parse_filter("[Adblock Plus 2.0]")
        assert isinstance(flt, Comment)


class TestInvalidFilters:
    def test_blank_line(self):
        assert isinstance(parse_filter("   "), InvalidFilter)

    def test_unknown_option(self):
        flt = parse_filter("||x.com^$bogus-option")
        assert isinstance(flt, InvalidFilter)
        assert "bogus-option" in flt.error

    def test_truncated_domain_list(self):
        flt = parse_filter("@@||g.com/ads$domain=a.com|")
        assert isinstance(flt, InvalidFilter)

    def test_document_on_blocking_filter_invalid(self):
        assert isinstance(parse_filter("||x.com^$document"), InvalidFilter)

    def test_empty_filter(self):
        assert isinstance(parse_filter("@@"), InvalidFilter)

    def test_bad_regex(self):
        assert isinstance(parse_filter("/[unclosed/"), InvalidFilter)

    def test_parse_never_raises(self):
        for junk in ("$$$", "@@$", "##", "a#@#", "|||", "~", "@@$foo=bar"):
            parse_filter(junk)  # must not raise


class TestOptionSplitting:
    def test_dollar_in_pattern_kept_when_tail_not_options(self):
        flt = parse_filter("http://x.com/page$ref/ads")
        assert isinstance(flt, RequestFilter)
        assert flt.pattern_text == "http://x.com/page$ref/ads"

    def test_last_dollar_splits(self):
        flt = parse_filter("||x.com/a$b$script")
        assert isinstance(flt, RequestFilter)
        assert flt.pattern_text == "||x.com/a$b"
        assert flt.options.include_types == ContentType.SCRIPT
