"""Unit tests for filter-list parsing and serialisation."""

from repro.filters.filterlist import FilterList, parse_filter_list
from repro.filters.parser import Comment, InvalidFilter

SAMPLE = """[Adblock Plus 2.0]
! Title: Test list
! Version: 201504280000
! An ordinary comment
||adzerk.net^$third-party
@@||adzerk.net/reddit/$subdocument,domain=reddit.com
reddit.com#@##ad_main
##.banner-ad
!A7
@@||kayak.com^$elemhide
||broken$nonsense-option
"""


class TestParsing:
    def test_metadata_extracted(self):
        flist = parse_filter_list(SAMPLE, name="test")
        assert flist.metadata["title"] == "Test list"
        assert flist.metadata["version"] == "201504280000"
        assert flist.metadata["header"] == "[Adblock Plus 2.0]"

    def test_ordinary_comments_kept_as_entries(self):
        flist = parse_filter_list(SAMPLE)
        bodies = [c.body for c in flist.comments]
        assert "An ordinary comment" in bodies
        assert "A7" in bodies

    def test_active_filter_count(self):
        flist = parse_filter_list(SAMPLE)
        assert len(flist) == 5  # broken one is invalid, comments skipped

    def test_request_and_element_views(self):
        flist = parse_filter_list(SAMPLE)
        assert len(flist.request_filters) == 3
        assert len(flist.element_filters) == 2

    def test_invalid_filters_preserved(self):
        flist = parse_filter_list(SAMPLE)
        assert len(flist.invalid_filters) == 1
        assert "nonsense-option" in flist.invalid_filters[0].error

    def test_exception_view(self):
        flist = parse_filter_list(SAMPLE)
        texts = {f.text for f in flist.exception_filters}
        assert "@@||kayak.com^$elemhide" in texts
        assert "reddit.com#@##ad_main" in texts
        assert "||adzerk.net^$third-party" not in texts

    def test_blank_lines_skipped(self):
        flist = parse_filter_list("\n\n||x.com^\n\n")
        assert len(flist) == 1
        assert not flist.invalid_filters

    def test_order_preserved(self):
        flist = parse_filter_list(SAMPLE)
        texts = [e.text for e in flist.entries]
        a7 = texts.index("!A7")
        assert texts[a7 + 1] == "@@||kayak.com^$elemhide"


class TestMutation:
    def test_add_returns_parsed_entry(self):
        flist = FilterList(name="x")
        entry = flist.add("! hello")
        assert isinstance(entry, Comment)

    def test_extend(self):
        flist = FilterList()
        flist.extend(["||a.com^", "||b.com^"])
        assert len(flist) == 2

    def test_filter_texts(self):
        flist = FilterList()
        flist.extend(["||a.com^", "! c", "||b.com^"])
        assert flist.filter_texts() == ["||a.com^", "||b.com^"]


class TestRoundTrip:
    def test_to_text_reparses_equivalently(self):
        flist = parse_filter_list(SAMPLE, name="test")
        reparsed = parse_filter_list(flist.to_text(), name="test")
        assert flist.filter_texts() == reparsed.filter_texts()
        assert reparsed.metadata["title"] == "Test list"

    def test_invalid_entries_survive_round_trip(self):
        flist = parse_filter_list(SAMPLE)
        reparsed = parse_filter_list(flist.to_text())
        assert len(reparsed.invalid_filters) == len(flist.invalid_filters)
