"""Unit tests for request-pattern compilation (Appendix A.1)."""

import pytest

from repro.filters.pattern import (
    PatternError,
    compile_pattern,
    extract_keyword,
)


def matches(pattern: str, url: str, **kwargs) -> bool:
    return compile_pattern(pattern, **kwargs).matches(url)


class TestPlainPatterns:
    def test_literal_substring(self):
        assert matches("ads/banner", "http://x.com/ads/banner.gif")

    def test_implicit_wildcards_both_ends(self):
        assert matches("/ad-frame/", "http://x.com/a/ad-frame/b.gif")

    def test_non_match(self):
        assert not matches("/ad-frame/", "http://x.com/content/")

    def test_case_insensitive_by_default(self):
        assert matches("ADS", "http://x.com/ads/1")

    def test_match_case(self):
        assert not matches("ADS", "http://x.com/ads/1", match_case=True)
        assert matches("ADS", "http://x.com/ADS/1", match_case=True)


class TestWildcards:
    def test_star_matches_any_run(self):
        assert matches("ads/*/banner", "http://x.com/ads/2015/04/banner")

    def test_star_matches_empty(self):
        assert matches("ads*banner", "http://x.com/adsbanner")

    def test_adjacent_stars_collapse(self):
        pattern = compile_pattern("a**b")
        assert pattern.matches("http://x.com/a123b")

    def test_paper_google_module_pattern(self):
        pattern = "||google.com/ads/search/module/ads/*/search.js"
        assert matches(pattern,
                       "http://www.google.com/ads/search/module/ads/"
                       "v3/search.js")


class TestAnchors:
    def test_start_anchor(self):
        assert matches("|http://example.com", "http://example.com/x")
        assert not matches("|example.com", "http://example.com/")

    def test_end_anchor(self):
        assert matches("ad.jpg|", "http://e.com/ad.jpg")
        assert not matches("ad.jpg|", "http://e.com/ad.jpg.exe")

    def test_paper_example_end_anchor(self):
        # ||example.com/ad.jpg| matches https variant but not .exe
        pattern = "||example.com/ad.jpg|"
        assert matches(pattern, "https://example.com/ad.jpg")
        assert matches(pattern, "http://good.example.com/ad.jpg")
        assert not matches(pattern, "https://example.com/ad.jpg.exe")


class TestExtendedAnchor:
    def test_matches_domain_and_subdomains(self):
        assert matches("||adzerk.net^", "http://adzerk.net/x")
        assert matches("||adzerk.net^", "http://static.adzerk.net/x")

    def test_multiple_schemes(self):
        assert matches("||adzerk.net^", "https://adzerk.net/")
        assert matches("||adzerk.net^", "ws://adzerk.net/")

    def test_does_not_match_mid_label(self):
        assert not matches("||adzerk.net^", "http://notadzerk.net/")

    def test_matches_at_label_boundary_only(self):
        assert matches("||zerk.net^", "http://a.zerk.net/")
        assert not matches("||zerk.net^", "http://adzerk.net/")

    def test_anchored_hostname_extracted(self):
        pattern = compile_pattern("||adzerk.net^$x"[:-2])
        assert pattern.anchored_hostname == "adzerk.net"

    def test_no_hostname_for_plain_patterns(self):
        assert compile_pattern("/ads/").anchored_hostname is None


class TestSeparator:
    def test_separator_matches_slash(self):
        assert matches("||e.com^path", "http://e.com/path")

    def test_separator_matches_end_of_url(self):
        assert matches("||adzerk.net^", "http://adzerk.net")

    def test_separator_matches_colon_and_query(self):
        assert matches("e.com^", "http://e.com:8000/")
        assert matches("q^", "http://x.com/q?a=1")

    def test_separator_rejects_word_chars(self):
        assert not matches("||e.com^", "http://e.comx/")
        # - . % and _ are NOT separators
        assert not matches("ads^", "http://x.com/ads-top/")
        assert not matches("ads^", "http://x.com/ads.gif")
        assert not matches("ads^", "http://x.com/ads%20/")

    def test_paper_www_google_example(self):
        # ||^www.google.com^ style separator use around the host
        assert matches("||www.google.com^", "http://www.google.com/#q=foo")
        assert not matches("||www.google.com^", "http://scholar.google.com")


class TestRegexPatterns:
    def test_raw_regex(self):
        assert matches("/ad[0-9]+/", "http://x.com/ad123")

    def test_raw_regex_no_implicit_wildcard_semantics(self):
        assert not matches("/^http://only/", "http://x.com/http://only")

    def test_bad_regex_raises(self):
        with pytest.raises(PatternError):
            compile_pattern("/[unclosed/")

    def test_is_regex_flag(self):
        assert compile_pattern("/x/").is_regex
        assert not compile_pattern("x").is_regex


class TestKeywordExtraction:
    def test_anchored_host_keyword(self):
        assert extract_keyword("||adzerk.net^$third-party".split("$")[0]) \
            == "adzerk"

    def test_regex_has_no_keyword(self):
        assert extract_keyword("/ads[0-9]/") == ""

    def test_common_tokens_skipped(self):
        # "www" and "com" are too common to be useful bucket keys.
        assert extract_keyword("||www.com^") == ""

    def test_wildcard_adjacent_token_not_used(self):
        # "banner" touches a wildcard, so a URL token could extend it.
        keyword = extract_keyword("banner*")
        assert keyword == ""

    def test_longest_token_wins(self):
        assert extract_keyword("||googleadservices.com^") == (
            "googleadservices")

    def test_keyword_is_token_of_matching_urls(self):
        import re

        pattern = "||stats.g.doubleclick.net^"
        keyword = extract_keyword(pattern)
        url = "http://stats.g.doubleclick.net/dc.js"
        assert compile_pattern(pattern).matches(url)
        assert keyword in re.findall(r"[a-z0-9%]{3,}", url)

    def test_unanchored_leading_token_not_used(self):
        # Pattern "ads/x^" could match ".../myads/x" where "ads" is not
        # a URL token, so it must not become the keyword.
        assert extract_keyword("ads/x^") != "ads"
