"""Metamorphic property tests for the decision engine (hypothesis).

These express ABP's semantics as monotonicity laws: growing the
whitelist can only liberalise decisions, growing the blacklist can only
restrict them, and exceptions always dominate blocking.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.engine import AdblockEngine, Verdict
from repro.filters.filterlist import parse_filter_list
from repro.filters.options import ContentType

_LABEL = st.text(alphabet=string.ascii_lowercase, min_size=2,
                 max_size=8)
_DOMAIN = st.builds(lambda a: f"{a}.com", _LABEL)

_BLOCKING = st.builds(lambda d: f"||{d}^$third-party", _DOMAIN)
_EXCEPTION = st.one_of(
    st.builds(lambda d: f"@@||{d}^$third-party", _DOMAIN),
    st.builds(lambda d, p: f"@@||{d}^$third-party,domain={p}",
              _DOMAIN, _DOMAIN),
)
_REQUEST = st.builds(
    lambda d, path: (f"http://{d}/{path}", d),
    _DOMAIN, st.text(alphabet=string.ascii_lowercase + "/", max_size=10))

_RANK = {Verdict.BLOCK: 0, Verdict.NO_MATCH: 1, Verdict.ALLOW: 2}


def _engine(blocking: list[str], exceptions: list[str]) -> AdblockEngine:
    engine = AdblockEngine()
    if blocking:
        engine.subscribe(parse_filter_list("\n".join(blocking),
                                           name="easylist"))
    if exceptions:
        engine.subscribe(parse_filter_list("\n".join(exceptions),
                                           name="whitelist"))
    return engine


def _decide(engine: AdblockEngine, request, page_host="page.example"):
    url, host = request
    return engine.check_request(url, ContentType.IMAGE, page_host,
                                host).verdict


class TestMonotonicity:
    @given(st.lists(_BLOCKING, max_size=5),
           st.lists(_EXCEPTION, max_size=5),
           _EXCEPTION, _REQUEST)
    @settings(max_examples=120, deadline=None)
    def test_adding_exception_never_restricts(self, blocking, exceptions,
                                              extra, request):
        before = _decide(_engine(blocking, exceptions), request)
        after = _decide(_engine(blocking, exceptions + [extra]), request)
        assert _RANK[after] >= _RANK[before]

    @given(st.lists(_BLOCKING, max_size=5),
           st.lists(_EXCEPTION, max_size=5),
           _BLOCKING, _REQUEST)
    @settings(max_examples=120, deadline=None)
    def test_adding_blocking_never_liberalises(self, blocking,
                                               exceptions, extra,
                                               request):
        before = _decide(_engine(blocking, exceptions), request)
        after = _decide(_engine(blocking + [extra], exceptions), request)
        if before is Verdict.ALLOW:
            assert after is Verdict.ALLOW  # exceptions keep dominating
        else:
            assert _RANK[after] <= _RANK[before]

    @given(st.lists(_BLOCKING, min_size=1, max_size=5),
           st.lists(_EXCEPTION, max_size=5), _REQUEST)
    @settings(max_examples=120, deadline=None)
    def test_subscribing_twice_is_idempotent(self, blocking, exceptions,
                                             request):
        once = _decide(_engine(blocking, exceptions), request)
        twice = _decide(_engine(blocking + blocking,
                                exceptions + exceptions), request)
        assert once is twice


class TestDominance:
    @given(_DOMAIN, _REQUEST)
    @settings(max_examples=100, deadline=None)
    def test_exception_always_beats_blocking(self, domain, request):
        url, host = request
        engine = _engine([f"||{host}^"], [f"@@||{host}^"])
        assert _decide(engine, request) is Verdict.ALLOW

    @given(st.lists(_BLOCKING, min_size=1, max_size=6), _REQUEST)
    @settings(max_examples=100, deadline=None)
    def test_document_privilege_allows_everything(self, blocking,
                                                  request):
        engine = _engine(blocking, ["@@||page.example^$document"])
        privileges = engine.document_privileges(
            "http://page.example/", "page.example")
        url, host = request
        decision = engine.check_request(
            url, ContentType.IMAGE, "page.example", host,
            privileges=privileges)
        assert decision.verdict is Verdict.ALLOW


class TestDecisionConsistency:
    @given(st.lists(_BLOCKING, max_size=6),
           st.lists(_EXCEPTION, max_size=6), _REQUEST)
    @settings(max_examples=150, deadline=None)
    def test_verdict_matches_filter_sets(self, blocking, exceptions,
                                         request):
        engine = _engine(blocking, exceptions)
        url, host = request
        decision = engine.check_request(url, ContentType.IMAGE,
                                        "page.example", host)
        if decision.exceptions:
            assert decision.verdict is Verdict.ALLOW
        elif decision.blocking:
            assert decision.verdict is Verdict.BLOCK
        else:
            assert decision.verdict is Verdict.NO_MATCH
