"""Unit tests for the blocking/exception decision engine."""

import pytest

from repro.filters.engine import AdblockEngine, Verdict
from repro.filters.filterlist import parse_filter_list
from repro.filters.options import ContentType
from repro.web.dom import Document


def make_engine(blocking: str = "", exceptions: str = "",
                record: bool = False) -> AdblockEngine:
    engine = AdblockEngine(record=record)
    if blocking:
        engine.subscribe(parse_filter_list(blocking, name="easylist"))
    if exceptions:
        engine.subscribe(parse_filter_list(exceptions, name="whitelist"))
    return engine


class TestRequestDecisions:
    def test_blocking_filter_blocks(self):
        engine = make_engine("||adzerk.net^$third-party")
        decision = engine.check_request(
            "http://static.adzerk.net/ads.html", ContentType.SUBDOCUMENT,
            "reddit.com", "static.adzerk.net")
        assert decision.verdict is Verdict.BLOCK

    def test_exception_overrides_blocking(self):
        engine = make_engine(
            "||adzerk.net^$third-party",
            "@@||adzerk.net/reddit/$subdocument,domain=reddit.com")
        decision = engine.check_request(
            "http://static.adzerk.net/reddit/ads.html",
            ContentType.SUBDOCUMENT, "reddit.com", "static.adzerk.net")
        assert decision.verdict is Verdict.ALLOW
        assert decision.blocking and decision.exceptions

    def test_exception_is_domain_scoped(self):
        engine = make_engine(
            "||adzerk.net^$third-party",
            "@@||adzerk.net/reddit/$subdocument,domain=reddit.com")
        decision = engine.check_request(
            "http://static.adzerk.net/reddit/ads.html",
            ContentType.SUBDOCUMENT, "other.com", "static.adzerk.net")
        assert decision.verdict is Verdict.BLOCK

    def test_no_match_passes_through(self):
        engine = make_engine("||adzerk.net^")
        decision = engine.check_request(
            "http://benign.com/app.js", ContentType.SCRIPT,
            "x.com", "benign.com")
        assert decision.verdict is Verdict.NO_MATCH

    def test_first_party_not_blocked_by_third_party_filter(self):
        engine = make_engine("||adzerk.net^$third-party")
        decision = engine.check_request(
            "http://adzerk.net/self.js", ContentType.SCRIPT,
            "adzerk.net", "adzerk.net")
        assert decision.verdict is Verdict.NO_MATCH

    def test_content_type_gating(self):
        engine = make_engine("||tracker.com^$image")
        blocked = engine.check_request(
            "http://tracker.com/px.gif", ContentType.IMAGE,
            "x.com", "tracker.com")
        passed = engine.check_request(
            "http://tracker.com/lib.js", ContentType.SCRIPT,
            "x.com", "tracker.com")
        assert blocked.verdict is Verdict.BLOCK
        assert passed.verdict is Verdict.NO_MATCH


class TestDocumentPrivileges:
    def test_document_exception_allows_everything(self):
        engine = make_engine(
            "||ads.net^",
            "@@||special.com^$document")
        privileges = engine.document_privileges(
            "http://special.com/", "special.com")
        assert privileges.allow_all
        decision = engine.check_request(
            "http://ads.net/x.js", ContentType.SCRIPT,
            "special.com", "ads.net", privileges=privileges)
        assert decision.verdict is Verdict.ALLOW

    def test_no_privileges_without_matching_filter(self):
        engine = make_engine("||ads.net^", "@@||special.com^$document")
        privileges = engine.document_privileges(
            "http://other.com/", "other.com")
        assert not privileges.allow_all

    def test_sitekey_document_privilege(self):
        engine = make_engine("||ads.net^", "@@$sitekey=KEYA,document")
        with_key = engine.document_privileges(
            "http://parked.com/", "parked.com", sitekey="KEYA")
        without = engine.document_privileges(
            "http://parked.com/", "parked.com")
        wrong = engine.document_privileges(
            "http://parked.com/", "parked.com", sitekey="KEYB")
        assert with_key.allow_all
        assert not without.allow_all
        assert not wrong.allow_all

    def test_elemhide_privilege_disables_hiding_only(self):
        engine = make_engine("||ads.net^\n##.ad", "@@||ask.com^$elemhide")
        privileges = engine.document_privileges(
            "http://ask.com/", "ask.com")
        assert privileges.disable_elemhide and not privileges.allow_all
        # Request blocking still applies.
        decision = engine.check_request(
            "http://ads.net/x.gif", ContentType.IMAGE,
            "ask.com", "ads.net", privileges=privileges)
        assert decision.verdict is Verdict.BLOCK


class TestElementHiding:
    def _page_with_ad(self):
        doc = Document(url="http://x.com/")
        ad = doc.body.new_child("div", class_="ad")
        return doc, ad

    def test_element_hidden(self):
        engine = make_engine("##.ad")
        doc, ad = self._page_with_ad()
        hidden = engine.hidden_elements(doc.all_elements(), "x.com")
        assert hidden == [ad]

    def test_element_exception_unhides(self):
        engine = make_engine("##.ad", "x.com#@#.ad")
        doc, _ = self._page_with_ad()
        assert engine.hidden_elements(doc.all_elements(), "x.com") == []

    def test_element_exception_scoped_to_domain(self):
        engine = make_engine("##.ad", "x.com#@#.ad")
        doc, ad = self._page_with_ad()
        assert engine.hidden_elements(doc.all_elements(), "y.com") == [ad]

    def test_domain_scoped_hiding(self):
        engine = make_engine("reddit.com###siteTable_organic")
        doc = Document(url="http://reddit.com/")
        ad = doc.body.new_child("div", id="siteTable_organic")
        assert engine.hidden_elements(doc.all_elements(),
                                      "reddit.com") == [ad]
        assert engine.hidden_elements(doc.all_elements(),
                                      "example.com") == []

    def test_elemhide_privilege_suppresses_hiding(self):
        engine = make_engine("##.ad", "@@||x.com^$elemhide")
        doc, _ = self._page_with_ad()
        privileges = engine.document_privileges("http://x.com/", "x.com")
        assert engine.hidden_elements(doc.all_elements(), "x.com",
                                      privileges=privileges) == []


class TestActivationRecording:
    def test_activations_recorded_when_enabled(self):
        engine = make_engine("||ads.net^",
                             "@@||ads.net^$domain=x.com", record=True)
        engine.check_request("http://ads.net/a.js", ContentType.SCRIPT,
                             "x.com", "ads.net")
        kinds = {(a.is_exception, a.list_name) for a in engine.activations}
        assert (False, "easylist") in kinds
        assert (True, "whitelist") in kinds

    def test_needless_exception_flagged(self):
        # gstatic scenario: exception fires with no blocking counterpart.
        engine = make_engine("||unrelated.net^",
                             "@@||gstatic.com^$third-party", record=True)
        engine.check_request("http://fonts.gstatic.com/f.woff",
                             ContentType.OTHER, "x.com",
                             "fonts.gstatic.com")
        exceptions = [a for a in engine.activations if a.is_exception]
        assert exceptions and all(a.needless for a in exceptions)

    def test_not_recorded_when_disabled(self):
        engine = make_engine("||ads.net^", record=False)
        engine.check_request("http://ads.net/a.js", ContentType.SCRIPT,
                             "x.com", "ads.net")
        assert engine.activations == []

    def test_clear_activations(self):
        engine = make_engine("||ads.net^", record=True)
        engine.check_request("http://ads.net/a.js", ContentType.SCRIPT,
                             "x.com", "ads.net")
        engine.clear_activations()
        assert engine.activations == []


class TestSubscriptions:
    def test_subscriptions_listed(self):
        engine = make_engine("||a.com^", "@@||a.com^$domain=x.com")
        assert [s.name for s in engine.subscriptions] == [
            "easylist", "whitelist"]

    def test_list_attribution(self):
        engine = make_engine("||a.com^", "@@||a.com^$domain=x.com")
        decision = engine.check_request(
            "http://a.com/x", ContentType.IMAGE, "x.com", "a.com")
        assert engine.list_name_for(decision.blocking[0]) == "easylist"
        assert engine.list_name_for(decision.exceptions[0]) == "whitelist"
