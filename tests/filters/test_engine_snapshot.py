"""The frozen snapshot / mutable session split of the engine."""

import pytest

from repro.filters.engine import (
    AdblockEngine,
    EngineSnapshot,
    FrozenEngineError,
)
from repro.filters.filterlist import parse_filter_list
from repro.filters.options import ContentType
from repro.obs import observe

EASYLIST = "||ads.example^\n||track.example^$third-party\n##.banner-ad"
WHITELIST = "@@||ads.example^$domain=friendly.example"


def lists():
    return [parse_filter_list(EASYLIST, name="easylist"),
            parse_filter_list(WHITELIST, name="exceptionrules")]


def check(engine, host="news.example"):
    return engine.check_request("http://ads.example/a.js",
                                ContentType.SCRIPT, host, "ads.example")


class TestFreeze:
    def test_freeze_is_idempotent(self):
        engine = AdblockEngine()
        engine.subscribe(lists()[0])
        assert engine.freeze() is engine.freeze()

    def test_frozen_engine_rejects_subscribe(self):
        engine = AdblockEngine()
        engine.subscribe(lists()[0])
        engine.freeze()
        assert engine.frozen
        with pytest.raises(FrozenEngineError, match="frozen"):
            engine.subscribe(lists()[1])

    def test_frozen_engine_still_answers(self):
        engine = AdblockEngine()
        for fl in lists():
            engine.subscribe(fl)
        before = check(engine)
        engine.freeze()
        assert check(engine).verdict is before.verdict

    def test_snapshot_preserves_epoch_and_counts(self):
        engine = AdblockEngine()
        for fl in lists():
            engine.subscribe(fl)
        snapshot = engine.freeze()
        assert snapshot.epoch == engine.subscription_epoch
        assert snapshot.filter_count == sum(len(fl) for fl in lists())

    def test_identical_lists_compile_to_identical_epoch(self):
        assert EngineSnapshot.build(lists()).epoch == \
            EngineSnapshot.build(lists()).epoch


class TestSessions:
    def test_session_aliases_compiled_structures(self):
        snapshot = EngineSnapshot.build(lists())
        session = snapshot.session()
        assert session._blocking is snapshot.blocking
        assert session._privilege_cache is snapshot._privilege_cache
        assert session.subscription_epoch == snapshot.epoch
        assert session.frozen

    def test_session_rejects_subscribe(self):
        session = EngineSnapshot.build(lists()).session()
        with pytest.raises(FrozenEngineError):
            session.subscribe(parse_filter_list("||x.example^", name="x"))

    def test_sessions_answer_like_the_original_engine(self):
        engine = AdblockEngine()
        for fl in lists():
            engine.subscribe(fl)
        session = EngineSnapshot.build(lists()).session()
        for host in ("news.example", "friendly.example"):
            assert check(session, host).verdict is \
                check(engine, host).verdict

    def test_recording_is_per_session(self):
        snapshot = EngineSnapshot.build(lists())
        recording = snapshot.session(record=True)
        silent = snapshot.session()
        check(recording)
        check(silent)
        assert len(recording.activations) == 1
        assert len(silent.activations) == 0

    def test_sessions_share_the_privilege_memo(self):
        snapshot = EngineSnapshot.build(lists())
        snapshot.session().document_privileges(
            "http://friendly.example/", "friendly.example")
        assert len(snapshot._privilege_cache) == 1
        snapshot.session().document_privileges(
            "http://friendly.example/", "friendly.example")
        assert len(snapshot._privilege_cache) == 1

    def test_list_name_resolution_survives_freezing(self):
        snapshot = EngineSnapshot.build(lists())
        decision = snapshot.session().check_request(
            "http://ads.example/a.js", ContentType.SCRIPT,
            "news.example", "ads.example")
        assert [snapshot.list_name_for(f) for f in decision.blocking] == \
            ["easylist"]


class TestPrivilegeCacheClears:
    def test_full_cache_wipe_is_counted(self, monkeypatch):
        monkeypatch.setattr(AdblockEngine, "PRIVILEGE_CACHE_MAX", 2)
        with observe() as (registry, _):
            session = EngineSnapshot.build(lists()).session()
            for i in range(4):
                session.document_privileges(
                    f"http://page{i}.example/", f"page{i}.example")
            flat = registry.flat()
        assert flat["filters.engine.privilege_cache_clears"] >= 1

    def test_no_wipe_below_the_cap(self):
        with observe() as (registry, _):
            session = EngineSnapshot.build(lists()).session()
            for i in range(4):
                session.document_privileges(
                    f"http://page{i}.example/", f"page{i}.example")
            flat = registry.flat()
        assert "filters.engine.privilege_cache_clears" not in flat
