"""Unit tests for the CSS selector subset (element hiding)."""

import pytest

from repro.filters.selectors import SelectorError, parse_selector
from repro.web.dom import Element


def el(tag="div", parent=None, **attrs) -> Element:
    attributes = {k.rstrip("_").replace("_", "-"): v
                  for k, v in attrs.items()}
    element = Element(tag=tag, attributes=attributes)
    if parent is not None:
        parent.append(element)
    return element


class TestSimpleSelectors:
    def test_id_selector(self):
        sel = parse_selector("#siteTable_organic")
        assert sel.matches(el(id="siteTable_organic"))
        assert not sel.matches(el(id="other"))

    def test_class_selector(self):
        sel = parse_selector(".ButtonAd")
        assert sel.matches(el(class_="ButtonAd big"))
        assert not sel.matches(el(class_="Button"))

    def test_tag_selector(self):
        sel = parse_selector("iframe")
        assert sel.matches(el(tag="iframe"))
        assert not sel.matches(el(tag="div"))

    def test_tag_selector_case_insensitive(self):
        assert parse_selector("IFRAME").matches(el(tag="iframe"))

    def test_universal_selector(self):
        sel = parse_selector("*")
        assert sel.matches(el(tag="span"))

    def test_missing_id_does_not_match(self):
        assert not parse_selector("#x").matches(el())


class TestAttributeSelectors:
    def test_presence(self):
        sel = parse_selector("[data-ad]")
        assert sel.matches(el(data_ad=""))
        assert not sel.matches(el())

    def test_exact_value(self):
        sel = parse_selector('[name="ad_main"]')
        assert sel.matches(el(name="ad_main"))
        assert not sel.matches(el(name="ad_mainx"))

    def test_prefix(self):
        sel = parse_selector('[src^="http://static"]')
        assert sel.matches(el(src="http://static.adzerk.net/x"))
        assert not sel.matches(el(src="https://static.adzerk.net"))

    def test_suffix(self):
        sel = parse_selector('[src$=".gif"]')
        assert sel.matches(el(src="/ad.gif"))
        assert not sel.matches(el(src="/ad.gif.exe"))

    def test_contains(self):
        sel = parse_selector('[class*="ad"]')
        assert sel.matches(el(class_="header-ads"))

    def test_word_match(self):
        sel = parse_selector('[class~="promoted"]')
        assert sel.matches(el(class_="grid promoted item"))
        assert not sel.matches(el(class_="promoteditem"))

    def test_unquoted_value(self):
        sel = parse_selector("[id=adbar]")
        assert sel.matches(el(id="adbar"))


class TestCompoundSelectors:
    def test_tag_and_class(self):
        sel = parse_selector("div.ad")
        assert sel.matches(el(tag="div", class_="ad"))
        assert not sel.matches(el(tag="span", class_="ad"))

    def test_class_and_attribute(self):
        sel = parse_selector('.unit[data-slot="top"]')
        assert sel.matches(el(class_="unit", data_slot="top"))
        assert not sel.matches(el(class_="unit"))

    def test_tag_must_come_first(self):
        with pytest.raises(SelectorError):
            parse_selector("[data-x]div")


class TestCombinators:
    def test_descendant(self):
        grandparent = el(class_="sidebar")
        parent = el(parent=grandparent)
        child = el(parent=parent, class_="ad")
        sel = parse_selector(".sidebar .ad")
        assert sel.matches(child)
        assert not sel.matches(el(class_="ad"))

    def test_child(self):
        parent = el(class_="sidebar")
        child = el(parent=parent, class_="ad")
        sel = parse_selector(".sidebar > .ad")
        assert sel.matches(child)

    def test_child_rejects_deeper_descendant(self):
        grandparent = el(class_="sidebar")
        middle = el(parent=grandparent)
        child = el(parent=middle, class_="ad")
        assert not parse_selector(".sidebar > .ad").matches(child)
        assert parse_selector(".sidebar .ad").matches(child)

    def test_three_level_chain(self):
        a = el(id="page")
        b = el(parent=a, class_="main")
        c = el(parent=b, tag="img")
        assert parse_selector("#page .main img").matches(c)

    def test_dangling_combinator_rejected(self):
        with pytest.raises(SelectorError):
            parse_selector(".a >")
        with pytest.raises(SelectorError):
            parse_selector("> .a")


class TestSelectorLists:
    def test_comma_separated(self):
        sel = parse_selector("#a, .b")
        assert sel.matches(el(id="a"))
        assert sel.matches(el(class_="b"))
        assert not sel.matches(el(id="c"))

    def test_select_filters_iterable(self):
        elements = [el(id="a"), el(id="b"), el(class_="b")]
        sel = parse_selector("#a, .b")
        assert sel.select(elements) == [elements[0], elements[2]]

    def test_empty_selector_rejected(self):
        with pytest.raises(SelectorError):
            parse_selector("")
        with pytest.raises(SelectorError):
            parse_selector("   ")

    def test_empty_list_member_rejected(self):
        with pytest.raises(SelectorError):
            parse_selector("#a, ,#b")

    def test_garbage_rejected(self):
        with pytest.raises(SelectorError):
            parse_selector("###")
