"""Unit tests for the Section 8 hygiene audit."""

from repro.filters.filterlist import parse_filter_list
from repro.filters.hygiene import TRUNCATION_LENGTH, audit


class TestDuplicates:
    def test_duplicate_counted_once_per_surplus_copy(self):
        flist = parse_filter_list("||a.com^\n||a.com^\n||a.com^\n||b.com^")
        report = audit(flist)
        assert report.duplicate_filter_count == 2
        assert report.duplicates == {"||a.com^": 3}

    def test_clean_list(self):
        report = audit(parse_filter_list("||a.com^\n||b.com^"))
        assert report.clean


class TestMalformed:
    def test_malformed_detected(self):
        report = audit(parse_filter_list("||a.com^$junk-option"))
        assert report.malformed_count == 1

    def test_blank_lines_not_malformed(self):
        report = audit(parse_filter_list("||a.com^\n\n\n"))
        assert report.malformed_count == 0


class TestTruncation:
    def test_truncated_filter_detected(self):
        long_line = "@@||g.com/ads$domain=" + "x" * TRUNCATION_LENGTH
        truncated = long_line[:TRUNCATION_LENGTH - 1] + "|"
        report = audit(parse_filter_list(truncated))
        assert report.truncated_count == 1
        # A truncated domain list is also malformed.
        assert report.malformed_count == 1

    def test_normal_length_not_flagged(self):
        report = audit(parse_filter_list("@@||g.com/ads$domain=a.com"))
        assert report.truncated_count == 0


class TestDeprecatedOptions:
    def test_deprecated_uses_counted(self):
        flist = parse_filter_list("||a.com^$background\n||b.com^$xbl,ping")
        report = audit(flist)
        assert report.deprecated_options["background"] == 1
        assert report.deprecated_options["xbl"] == 1
        assert report.deprecated_options["ping"] == 1


class TestGeneratedWhitelist:
    """The paper's exact hygiene defects in the generated tip."""

    def test_35_duplicates(self, study):
        assert study.hygiene.duplicate_filter_count == 35

    def test_8_malformed_all_truncated(self, study):
        assert study.hygiene.malformed_count == 8
        assert study.hygiene.truncated_count == 8

    def test_truncated_exactly_at_limit(self, study):
        assert all(len(text) == TRUNCATION_LENGTH
                   for text in study.hygiene.truncated)
