"""Seeded differential fuzz: compiled index vs legacy, 10k+ pairs.

Every (filter list, URL) pair asserts the three contracts the compiled
index must keep:

* **completeness** — the compiled candidate set is a superset of the
  filters that actually match (never-filter-out-a-match);
* **byte-identical ordering** — the compiled candidate *sequence*
  equals the legacy index's, element for element;
* **verdict parity** — ``match_first`` returns the identical filter
  object and ``match_all`` the identical list.

Everything is derived from one fixed seed, so a failure reproduces
exactly; bump ``FUZZ_SEED`` locally to explore a different corpus.
"""

import random

from repro.filters.compiled.index import CompiledFilterIndex
from repro.filters.index import FilterIndex
from repro.filters.options import ContentType
from repro.filters.parser import RequestFilter, parse_filter

FUZZ_SEED = 20150


HOST_WORDS = ["ads", "adserv", "track", "stats", "pixel", "cdn",
              "static", "media", "click", "banner", "pop", "sync",
              "doubleclick", "adzerk", "gstatic", "metrics", "beacon"]
TLDS = ["com", "net", "org", "example", "co.uk"]
PATH_WORDS = ["banner", "ads", "img", "js", "frame", "track", "a", "xy",
              "advert", "%2fads", "1x1", "320x50", "ADS", "Pixel"]
OPTIONS = ["", "$third-party", "$script", "$image,third-party",
           "$domain=example.com", "$~image"]


def _filter_text(rng: random.Random) -> str:
    shape = rng.randrange(6)
    host = (rng.choice(HOST_WORDS) + rng.choice(["", "-", "."])
            + rng.choice(HOST_WORDS) + "." + rng.choice(TLDS))
    path = "/".join(rng.choice(PATH_WORDS)
                    for _ in range(rng.randrange(1, 3)))
    prefix = "@@" if rng.random() < 0.25 else ""
    if shape == 0:
        return f"{prefix}||{host}^{rng.choice(OPTIONS)}"
    if shape == 1:
        return f"{prefix}||{host}/{path}{rng.choice(OPTIONS)}"
    if shape == 2:
        return f"{prefix}{path}^{rng.choice(OPTIONS)}"
    if shape == 3:                       # wildcards shorten keywords
        return f"{prefix}||{host}/*/{path}"
    if shape == 4:                       # raw regex: fallback bucket
        return f"{prefix}/{rng.choice(PATH_WORDS)}[0-9]+/"
    return f"{prefix}|http://{host}/{path}|"


def _url(rng: random.Random) -> str:
    host = (rng.choice(HOST_WORDS) + rng.choice(["", "-x"])
            + "." + rng.choice(TLDS))
    segments = [rng.choice(PATH_WORDS + HOST_WORDS)
                for _ in range(rng.randrange(0, 4))]
    url = f"http://{host}/" + "/".join(segments)
    roll = rng.random()
    if roll < 0.05:
        url = url.upper()
    elif roll < 0.08:
        url += "?q=m%C3%BCnchenü"     # non-ASCII detour
    elif roll < 0.10:
        url += "?" + rng.choice(HOST_WORDS) + "=" + rng.choice(HOST_WORDS)
    return url


def _build_corpus(seed: int, lists: int, urls_per_list: int):
    rng = random.Random(seed)
    for _ in range(lists):
        texts = {_filter_text(rng)
                 for _ in range(rng.randrange(4, 40))}
        filters = [flt for flt in map(parse_filter, sorted(texts))
                   if isinstance(flt, RequestFilter)]
        if not filters:
            continue
        rng.shuffle(filters)
        urls = [_url(rng) for _ in range(urls_per_list)]
        yield filters, urls


class TestDifferentialFuzz:
    LISTS = 60
    URLS_PER_LIST = 180      # 60 x 180 >= 10,800 (filter list, URL) pairs

    def test_compiled_equals_legacy_on_10k_pairs(self):
        pairs = 0
        mismatches = []
        for filters, urls in _build_corpus(FUZZ_SEED, self.LISTS,
                                           self.URLS_PER_LIST):
            legacy = FilterIndex(filters)
            compiled = CompiledFilterIndex.compile(legacy)
            for url in urls:
                pairs += 1
                legacy_seq = list(legacy.candidates(url))
                compiled_seq = list(compiled.candidates(url))
                if compiled_seq != legacy_seq:
                    mismatches.append(("sequence", url,
                                       [f.text for f in legacy_seq],
                                       [f.text for f in compiled_seq]))
                    continue
                host = url.split("/")[2].lower()
                matching = [flt for flt in filters
                            if flt.matches(url, ContentType.IMAGE,
                                           "page.example", host)]
                candidate_ids = {id(flt) for flt in compiled_seq}
                if not all(id(flt) in candidate_ids for flt in matching):
                    mismatches.append(("completeness", url,
                                       [f.text for f in matching], None))
                if (legacy.match_first(url, ContentType.IMAGE,
                                       "page.example", host)
                        is not compiled.match_first(url, ContentType.IMAGE,
                                                    "page.example", host)):
                    mismatches.append(("match_first", url, None, None))
                if (legacy.match_all(url, ContentType.SCRIPT,
                                     "page.example", host)
                        != compiled.match_all(url, ContentType.SCRIPT,
                                              "page.example", host)):
                    mismatches.append(("match_all", url, None, None))
        assert pairs >= 10_000, f"corpus too small: {pairs} pairs"
        assert not mismatches, mismatches[:5]

    def test_corpus_is_deterministic(self):
        def digest():
            return [
                ([f.text for f in filters], urls[:3])
                for filters, urls in _build_corpus(FUZZ_SEED, 3, 5)
            ]
        assert digest() == digest()


class TestArtifactFuzz:
    """Round-trip a slice of the fuzz corpus through the artifact."""

    def test_round_trip_preserves_candidates(self):
        from repro.filters.compiled import parse_artifact, serialize_artifact
        from repro.filters.engine import EngineSnapshot
        from repro.filters.filterlist import FilterList

        rng = random.Random(FUZZ_SEED + 1)
        for filters, urls in _build_corpus(FUZZ_SEED + 1, 8, 40):
            flist = FilterList(name="fuzz", entries=list(filters))
            snapshot = EngineSnapshot.build([flist])
            blob = serialize_artifact(snapshot, fingerprint="ab" * 4)
            rebuilt = parse_artifact(blob).build_snapshot([flist])
            for url in urls:
                for name in ("blocking", "exceptions"):
                    assert (list(getattr(rebuilt, name).candidates(url))
                            == list(getattr(snapshot, name)
                                    .candidates(url))), (url, name)
            # One random bit flip in the body must never go unnoticed.
            corrupt = bytearray(blob)
            corrupt[rng.randrange(len(corrupt))] ^= 0x40
            try:
                parse_artifact(bytes(corrupt))
            except Exception as exc:
                assert type(exc).__name__ == "CompiledArtifactError"
            else:  # the flip landed in the CRC'd-but-unused padding? no:
                raise AssertionError("corrupted artifact was accepted")
