"""Unit tests for the compiled filter index and its keyword automaton."""

import pytest

from repro.filters.compiled.automaton import TOKEN_TABLE, KeywordAutomaton
from repro.filters.compiled.index import CompiledFilterIndex
from repro.filters.index import FilterIndex, _url_tokens
from repro.filters.options import ContentType
from repro.filters.parser import parse_filter
from repro.obs import observe


def rf(text):
    flt = parse_filter(text)
    assert type(flt).__name__ == "RequestFilter", text
    return flt


FILTERS = [
    "||adzerk.net^$third-party",
    "||googleadservices.com^",
    "/banner[0-9]+/",                      # fallback (regex)
    "||stats.g.doubleclick.net^$script",
    "ads/banner^",
    "||example.com/ad.jpg|",
    "@@||gstatic.com^$third-party",
]

URLS = [
    "",
    "http://static.adzerk.net/reddit/ads.html",
    "http://www.googleadservices.com/pagead/conversion.js",
    "HTTP://STATIC.ADZERK.NET/UPPER/CASE",
    "http://x.com/banner12.gif",
    "http://y.com/ads/banner?z=googleadservices",   # multi-bucket hit
    "http://example.com/ad.jpg",
    "http://nothing.example/",
    "http://ex%61mple.com/%2Fads%2F",               # percent tokens
    "http://münchen.example/adzerk.net/x",          # non-ASCII detour
    "http://Kelvin.example/ads",               # 'K' lowers to ascii k
]


def build_pair(texts=FILTERS):
    legacy = FilterIndex([rf(text) for text in texts])
    return legacy, CompiledFilterIndex.compile(legacy)


class TestAutomaton:
    def test_token_table_lowercases_and_collapses(self):
        raw = b"HTTP://Ads.Example/x?y=1%2F"
        toks = raw.translate(TOKEN_TABLE).split()
        assert toks == [b"http", b"ads", b"example", b"x", b"y", b"1%2f"]

    def test_walk_token_exact_match_only(self):
        auto = KeywordAutomaton.build([b"ads", b"adserv"])
        assert auto.walk_token(b"ads") == 0
        assert auto.walk_token(b"adserv") == 1
        assert auto.walk_token(b"adse") is None      # prefix, not a keyword
        assert auto.walk_token(b"xads") is None      # not from the root

    def test_token_hits_respect_boundaries(self):
        auto = KeywordAutomaton.build([b"ads", b"track"])
        # 'preads' contains 'ads' as a suffix substring, not a token.
        hits = auto.token_hits(b"http://preads.example/track?ads=1")
        assert [auto.keywords[kid] for kid in hits] == [b"track", b"ads"]

    def test_scan_emits_suffix_keywords(self):
        auto = KeywordAutomaton.build([b"he", b"she", b"hers"])
        assert [(pos, auto.keywords[kid])
                for pos, kid in auto.scan(b"shers")] == \
            [(3, b"she"), (3, b"he"), (5, b"hers")]

    def test_build_rejects_bad_keywords(self):
        with pytest.raises(ValueError):
            KeywordAutomaton.build([b"ads", b"ads"])          # duplicate
        with pytest.raises(ValueError):
            KeywordAutomaton.build([b""])                     # empty
        with pytest.raises(ValueError):
            KeywordAutomaton.build([b"Ads"])                  # not lowercased

    def test_from_tables_validates_structure(self):
        auto = KeywordAutomaton.build([b"ads", b"track"])
        with pytest.raises(ValueError):
            KeywordAutomaton.from_tables(
                keywords=list(auto.keywords),
                edge_offsets=auto.edge_offsets,
                edge_syms=auto.edge_syms,
                edge_targets=auto.edge_targets,
                fail=auto.fail[:-1],                 # wrong length
                out=auto.out,
                out_link=auto.out_link,
                depth=auto.depth)

    def test_stats_shape(self):
        auto = KeywordAutomaton.build([b"ads"])
        stats = auto.stats()
        assert set(stats) == {"keywords", "states", "edges"}
        assert stats["keywords"] == 1
        assert stats["states"] == 4                  # root + 'a','d','s'


class TestCompiledIndexParity:
    def test_candidate_sequences_byte_identical(self):
        legacy, compiled = build_pair()
        for url in URLS:
            assert ([f.text for f in compiled.candidates(url)]
                    == [f.text for f in legacy.candidates(url)]), url

    def test_match_first_and_match_all_identical(self):
        legacy, compiled = build_pair()
        for url in URLS:
            host = url.split("/")[2] if "//" in url else "h.example"
            for content_type in (ContentType.IMAGE, ContentType.SCRIPT):
                assert (compiled.match_first(url, content_type,
                                             "page.com", host)
                        is legacy.match_first(url, content_type,
                                              "page.com", host))
                assert (compiled.match_all(url, content_type,
                                           "page.com", host)
                        == legacy.match_all(url, content_type,
                                            "page.com", host))

    def test_instrumented_path_identical_to_fast_path(self):
        _, compiled = build_pair()
        for url in URLS:
            bare = list(compiled.candidates(url))
            with observe():
                instrumented = list(compiled.candidates(url))
            assert instrumented == bare, url

    def test_zero_hit_returns_shared_fallback_tuple(self):
        _, compiled = build_pair()
        first = compiled.candidates("http://nothing.example/")
        second = compiled.candidates("http://other.example/")
        assert first is second            # one shared, reusable tuple
        assert isinstance(first, tuple)

    def test_candidates_sequence_is_reusable(self):
        _, compiled = build_pair()
        result = compiled.candidates("http://static.adzerk.net/x")
        assert list(result) == list(result)   # not a one-shot generator

    def test_iteration_and_len_match_legacy(self):
        legacy, compiled = build_pair()
        assert len(compiled) == len(legacy)
        assert [f.text for f in compiled] == [f.text for f in legacy]

    def test_bucket_of_covers_every_filter(self):
        _, compiled = build_pair()
        for flt in compiled:
            kid = compiled.bucket_of(flt)
            if kid == -1:
                assert flt in compiled.fallback
            else:
                assert flt in compiled.bucket_filters(kid)

    def test_stats_keys(self):
        _, compiled = build_pair()
        stats = compiled.stats()
        assert set(stats) == {"filters", "keywords", "fallback",
                              "automaton_states", "automaton_edges"}
        assert stats["filters"] == len(FILTERS)

    def test_non_ascii_url_uses_legacy_tokens(self):
        # The Kelvin sign lowercases into ASCII 'k'; byte-level
        # lowercasing would miss the bucket the legacy tokeniser finds.
        legacy, compiled = build_pair(["||kelvin.example^"])
        url = "http://KELVIN.example/x"
        assert "kelvin" in _url_tokens(url)
        assert ([f.text for f in compiled.candidates(url)]
                == [f.text for f in legacy.candidates(url)])


class TestFrozenEngineUsesCompiledIndex:
    def test_freeze_compiles_both_indexes(self):
        from repro.filters.engine import AdblockEngine
        from repro.filters.filterlist import parse_filter_list
        engine = AdblockEngine()
        engine.subscribe(parse_filter_list(
            "||ads.example^\n@@||good.example^$document", name="easylist"))
        snapshot = engine.freeze()
        assert isinstance(snapshot.blocking, CompiledFilterIndex)
        assert isinstance(snapshot.exceptions, CompiledFilterIndex)
        stats = snapshot.compiled_stats()
        assert set(stats) == {"blocking", "exceptions"}
        assert stats["blocking"]["filters"] == 1
