"""Unit tests for the checksummed write-ahead run journal."""

import os

import pytest

from repro.state.crashpoints import CrashInjector, SimulatedCrash, crashing
from repro.state.journal import (
    JOURNAL_FORMAT,
    JournalCorruption,
    JournalError,
    RunJournal,
    _encode,
    replay_journal,
)


def make_journal(path, units=3):
    journal = RunJournal.create(str(path), {"run": "test"})
    for n in range(units):
        journal.append({"kind": "unit", "n": n})
    journal.close()


class TestRoundTrip:
    def test_create_append_replay(self, tmp_path):
        path = tmp_path / "run.jnl"
        make_journal(path)
        records, truncated = replay_journal(str(path))
        assert not truncated
        assert records[0]["kind"] == "header"
        assert records[0]["format"] == JOURNAL_FORMAT
        assert records[0]["meta"] == {"run": "test"}
        assert [r["n"] for r in records[1:]] == [0, 1, 2]
        assert [r["seq"] for r in records] == [0, 1, 2, 3]

    def test_open_resumes_sequence(self, tmp_path):
        path = tmp_path / "run.jnl"
        make_journal(path, units=2)
        journal, records, truncated = RunJournal.open(str(path))
        assert len(records) == 3 and not truncated
        journal.append({"kind": "unit", "n": 2})
        journal.close()
        records, _ = replay_journal(str(path))
        assert [r["seq"] for r in records] == [0, 1, 2, 3]

    def test_replay_does_not_modify_file(self, tmp_path):
        path = tmp_path / "run.jnl"
        make_journal(path)
        # Even with a torn tail appended, read-only replay leaves it.
        tainted = path.read_bytes() + b"deadbeef {\"seq\": 4, trunca"
        path.write_bytes(tainted)
        _, truncated = replay_journal(str(path))
        assert truncated
        assert path.read_bytes() == tainted

    def test_close_is_idempotent(self, tmp_path):
        journal = RunJournal.create(str(tmp_path / "run.jnl"))
        journal.close()
        journal.close()
        assert journal.closed


class TestTornTail:
    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / "run.jnl"
        make_journal(path)
        clean = path.read_bytes()
        path.write_bytes(clean + _encode(4, {"kind": "unit"})[:-7])
        journal, records, truncated = RunJournal.open(str(path))
        journal.close()
        assert truncated
        assert len(records) == 4
        assert path.read_bytes() == clean

    def test_half_line_without_newline(self, tmp_path):
        path = tmp_path / "run.jnl"
        make_journal(path)
        clean = path.read_bytes()
        path.write_bytes(clean + b"0a1b")
        records, truncated = replay_journal(str(path))
        assert truncated and len(records) == 4

    def test_fully_torn_journal_is_unusable(self, tmp_path):
        path = tmp_path / "empty.jnl"
        path.write_bytes(b"garbage")
        with pytest.raises(JournalError, match="no intact records"):
            replay_journal(str(path))


class TestCorruption:
    def test_mid_file_damage_raises(self, tmp_path):
        path = tmp_path / "run.jnl"
        make_journal(path)
        lines = path.read_bytes().split(b"\n")
        lines[1] = b"00000000" + lines[1][8:]  # break record 1's CRC
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(JournalCorruption, match="mid-file"):
            replay_journal(str(path))

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "run.jnl"
        journal = RunJournal.create(str(path))
        journal.close()
        with open(path, "ab") as handle:
            handle.write(_encode(5, {"kind": "unit"}))  # seq 1 expected
            handle.write(_encode(6, {"kind": "unit"}))
        # Each record is intact on its own, so the gap cannot be a torn
        # tail — valid records follow the first out-of-sequence one.
        with pytest.raises(JournalCorruption):
            replay_journal(str(path))

    def test_sequence_gap_at_tail_reads_as_torn(self, tmp_path):
        path = tmp_path / "run.jnl"
        journal = RunJournal.create(str(path))
        journal.close()
        with open(path, "ab") as handle:
            handle.write(_encode(5, {"kind": "unit"}))
        # A single trailing bad record with nothing valid after it is
        # indistinguishable from a crash artifact: truncated, not fatal.
        records, truncated = replay_journal(str(path))
        assert truncated and len(records) == 1

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "run.jnl"
        with open(path, "wb") as handle:
            handle.write(_encode(0, {"kind": "unit"}))
        with pytest.raises(JournalError, match="header"):
            replay_journal(str(path))


class TestCrashIntegration:
    def test_fatal_append_dies_before_writing(self, tmp_path):
        path = tmp_path / "run.jnl"
        journal = RunJournal.create(str(path))
        with crashing(CrashInjector(at_step=2)):
            journal.append({"kind": "unit", "n": 0})
            with pytest.raises(SimulatedCrash):
                journal.append({"kind": "unit", "n": 1})
        journal.close()
        records, truncated = replay_journal(str(path))
        assert not truncated  # clean-boundary death: no torn bytes
        assert [r.get("n") for r in records] == [None, 0]

    def test_torn_append_leaves_half_record(self, tmp_path):
        path = tmp_path / "run.jnl"
        journal = RunJournal.create(str(path))
        with crashing(CrashInjector(at_step=2, torn=True)):
            journal.append({"kind": "unit", "n": 0})
            with pytest.raises(SimulatedCrash):
                journal.append({"kind": "unit", "n": 1})
        journal.close()
        reopened, records, truncated = RunJournal.open(str(path))
        reopened.close()
        assert truncated
        assert [r.get("n") for r in records] == [None, 0]
