"""Unit tests for the deterministic crash injector."""

import pytest

from repro.state.crashpoints import (
    CRASH,
    CrashInjector,
    SimulatedCrash,
    crashing,
    crashpoint,
)


class TestCrashInjector:
    def test_fires_at_exact_step_with_label(self):
        injector = CrashInjector(at_step=3)
        injector.step("a")
        injector.step("b")
        with pytest.raises(SimulatedCrash) as exc:
            injector.step("fatal-unit")
        assert exc.value.step == 3
        assert exc.value.label == "fatal-unit"
        assert injector.steps_taken == 3

    def test_pending_true_only_before_fatal_step(self):
        injector = CrashInjector(at_step=2)
        assert not injector.pending()
        injector.step()
        assert injector.pending()

    def test_at_step_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashInjector(at_step=0)

    def test_is_base_exception_not_exception(self):
        # ``except Exception`` handlers (retry loops, tombstone
        # conversion) must never swallow a simulated kill.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)


class TestCrashpointScoping:
    def test_crashpoint_is_free_without_injector(self):
        assert CRASH.injector is None
        crashpoint("anything")  # no-op, no error

    def test_crashing_installs_and_restores(self):
        injector = CrashInjector(at_step=10)
        with crashing(injector):
            assert CRASH.injector is injector
            crashpoint()
        assert CRASH.injector is None
        assert injector.steps_taken == 1

    def test_crashing_restores_after_simulated_death(self):
        try:
            with crashing(CrashInjector(at_step=1)):
                crashpoint("dies")
        except SimulatedCrash:
            pass
        assert CRASH.injector is None

    def test_steps_counted_globally_across_sites(self):
        injector = CrashInjector(at_step=4)
        with crashing(injector):
            crashpoint("survey")
            crashpoint("history")
            crashpoint("survey")
            with pytest.raises(SimulatedCrash):
                crashpoint("archive")
