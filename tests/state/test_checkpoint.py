"""Unit tests for resumable checkpoints (scopes, units, rng snapshots)."""

import json
import random

import pytest

from repro.state.checkpoint import (
    Checkpoint,
    CheckpointError,
    restore_rng,
    snapshot_rng,
)
from repro.state.crashpoints import CrashInjector, SimulatedCrash, crashing


def _path(tmp_path):
    return str(tmp_path / "run.ckpt")


class TestLifecycle:
    def test_record_and_resume_round_trip(self, tmp_path):
        path = _path(tmp_path)
        ckpt = Checkpoint.start(path, {"cmd": "survey"})
        assert ckpt.begin_scope("s", {"n": 2}) == []
        ckpt.record("s", "a.com", {"rank": 1})
        ckpt.record("s", "b.com", {"rank": 2})
        ckpt.close()

        resumed = Checkpoint.resume(path, {"cmd": "survey"})
        assert resumed.resumed and not resumed.truncated_tail
        assert resumed.begin_scope("s", {"n": 2}) == [
            ("a.com", {"rank": 1}), ("b.com", {"rank": 2})]
        assert resumed.is_done("s", "a.com")
        assert not resumed.is_done("s", "c.com")
        resumed.close()

    def test_resume_missing_file_is_fresh_start(self, tmp_path):
        ckpt = Checkpoint.resume(_path(tmp_path), {"cmd": "survey"})
        assert not ckpt.resumed
        assert ckpt.begin_scope("s") == []
        ckpt.close()

    def test_start_truncates_prior_journal(self, tmp_path):
        path = _path(tmp_path)
        first = Checkpoint.start(path)
        first.begin_scope("s")
        first.record("s", "a.com", {})
        first.close()
        second = Checkpoint.start(path)
        second.close()
        resumed = Checkpoint.resume(path)
        assert resumed.completed("s") == []
        resumed.close()


class TestIdentityChecks:
    def test_meta_mismatch_rejected(self, tmp_path):
        path = _path(tmp_path)
        Checkpoint.start(path, {"cmd": "survey", "seed": 1}).close()
        with pytest.raises(CheckpointError, match="different run"):
            Checkpoint.resume(path, {"cmd": "survey", "seed": 2})

    def test_scope_fingerprint_mismatch_rejected(self, tmp_path):
        path = _path(tmp_path)
        ckpt = Checkpoint.start(path)
        ckpt.begin_scope("s", {"top_n": 100})
        ckpt.close()
        resumed = Checkpoint.resume(path)
        with pytest.raises(CheckpointError, match="not be comparable"):
            resumed.begin_scope("s", {"top_n": 200})
        resumed.close()

    def test_fingerprint_is_key_order_insensitive(self, tmp_path):
        path = _path(tmp_path)
        ckpt = Checkpoint.start(path)
        ckpt.begin_scope("s", {"a": 1, "b": 2})
        ckpt.close()
        resumed = Checkpoint.resume(path)
        resumed.begin_scope("s", {"b": 2, "a": 1})  # no error
        resumed.close()

    def test_record_requires_open_scope(self, tmp_path):
        ckpt = Checkpoint.start(_path(tmp_path))
        with pytest.raises(CheckpointError, match="begin_scope"):
            ckpt.record("s", "a.com", {})
        ckpt.close()


class TestCrashRecovery:
    def test_torn_tail_unit_is_redone_and_deduped(self, tmp_path):
        path = _path(tmp_path)
        ckpt = Checkpoint.start(path)
        ckpt.begin_scope("s")
        ckpt.record("s", "a.com", {"attempt": 1})
        with crashing(CrashInjector(at_step=1, torn=True)):
            with pytest.raises(SimulatedCrash):
                ckpt.record("s", "b.com", {"attempt": 1})
        ckpt.close()

        resumed = Checkpoint.resume(path)
        assert resumed.truncated_tail
        assert not resumed.is_done("s", "b.com")
        resumed.begin_scope("s")
        resumed.record("s", "b.com", {"attempt": 2})
        resumed.close()

        final = Checkpoint.resume(path)
        # Even if a key were journaled twice, the first wins.
        assert final.completed("s") == [("a.com", {"attempt": 1}),
                                        ("b.com", {"attempt": 2})]
        final.close()

    def test_scopes_are_independent(self, tmp_path):
        path = _path(tmp_path)
        ckpt = Checkpoint.start(path)
        ckpt.begin_scope("s1")
        ckpt.begin_scope("s2")
        ckpt.record("s1", "k", {"v": 1})
        ckpt.record("s2", "k", {"v": 2})
        ckpt.close()
        resumed = Checkpoint.resume(path)
        assert resumed.completed("s1") == [("k", {"v": 1})]
        assert resumed.completed("s2") == [("k", {"v": 2})]
        resumed.close()


class TestRngSnapshots:
    def test_round_trip_reproduces_sequence(self):
        rng = random.Random(42)
        rng.random()
        snap = snapshot_rng(rng)
        expected = [rng.random() for _ in range(5)]
        fresh = random.Random()
        restore_rng(fresh, snap)
        assert [fresh.random() for _ in range(5)] == expected

    def test_snapshot_survives_json(self):
        rng = random.Random(7)
        snap = json.loads(json.dumps(snapshot_rng(rng)))
        fresh = random.Random()
        restore_rng(fresh, snap)
        assert fresh.random() == random.Random(7).random()
