"""Unit tests for atomic artifact writes and checksum footers."""

import json
import os

import pytest

from repro.state.atomic import (
    ArtifactError,
    atomic_write_bytes,
    atomic_write_jsonl,
    atomic_write_text,
    jsonl_footer,
    read_jsonl,
)


class TestAtomicWrite:
    def test_round_trip_and_replace(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(str(path), "first")
        atomic_write_text(str(path), "second")
        assert path.read_text() == "second"

    def test_bytes_round_trip(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(str(path), b"\x00\x01\xff")
        assert path.read_bytes() == b"\x00\x01\xff"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "artifact.txt"
        for _ in range(3):
            atomic_write_text(str(path), "x")
        assert os.listdir(tmp_path) == ["artifact.txt"]


class TestJsonlFooter:
    def test_write_appends_verifiable_footer(self, tmp_path):
        path = tmp_path / "a.jsonl"
        written = atomic_write_jsonl(str(path), [{"a": 1}, {"b": 2}])
        assert written == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        footer = json.loads(lines[-1])
        body = (lines[0] + "\n" + lines[1] + "\n").encode()
        assert footer == jsonl_footer(body, 2)

    def test_read_strips_footer(self, tmp_path):
        path = tmp_path / "a.jsonl"
        atomic_write_jsonl(str(path), [{"a": 1}])
        assert read_jsonl(str(path)) == [{"a": 1}]

    def test_empty_records(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert atomic_write_jsonl(str(path), []) == 0
        assert read_jsonl(str(path)) == []

    def test_footer_optional_on_write(self, tmp_path):
        path = tmp_path / "nofooter.jsonl"
        atomic_write_jsonl(str(path), [{"a": 1}], footer=False)
        assert len(path.read_text().splitlines()) == 1
        assert read_jsonl(str(path), require_footer=False) == [{"a": 1}]


class TestCorruptionDetection:
    def _write(self, tmp_path, records):
        path = tmp_path / "c.jsonl"
        atomic_write_jsonl(str(path), records)
        return path

    def test_bit_flip_detected(self, tmp_path):
        path = self._write(tmp_path, [{"value": 12345}])
        data = bytearray(path.read_bytes())
        data[data.index(ord("3"))] = ord("4")
        path.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            read_jsonl(str(path))

    def test_dropped_record_detected(self, tmp_path):
        path = self._write(tmp_path, [{"a": 1}, {"b": 2}])
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0] + lines[-1])  # lose a data line
        with pytest.raises(ArtifactError, match="footer claims"):
            read_jsonl(str(path))

    def test_missing_footer_detected(self, tmp_path):
        path = self._write(tmp_path, [{"a": 1}])
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]))  # truncate the footer away
        with pytest.raises(ArtifactError, match="missing checksum footer"):
            read_jsonl(str(path))

    def test_verify_false_just_strips(self, tmp_path):
        path = self._write(tmp_path, [{"value": 12345}])
        data = bytearray(path.read_bytes())
        data[data.index(ord("3"))] = ord("4")
        path.write_bytes(bytes(data))
        assert read_jsonl(str(path), verify=False) == [{"value": 12445}]

    def test_unreadable_path(self, tmp_path):
        with pytest.raises(ArtifactError, match="unreadable"):
            read_jsonl(str(tmp_path / "missing.jsonl"))

    def test_non_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            read_jsonl(str(path))
