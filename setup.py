from setuptools import setup

# Kept for legacy editable installs (`pip install -e . --no-use-pep517`)
# in offline environments without the `wheel` package; all metadata lives
# in pyproject.toml.
setup()
